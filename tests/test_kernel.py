"""FleetKernel: lockstep SoA simulation vs per-engine ground truth.

Four layers of protection for the batched kernel (DESIGN.md §8):

* **value-oracle properties** -- kernel fleets return exactly the
  per-engine values on random workloads, for both the lockstep advance and
  the batched greedy-FIFO drive, at past/present/future query times;
* **bit-identical schedules** -- every contribution-driven scheduler run
  with the kernel forced on reproduces its per-engine transcript job for
  job (the golden transcripts pin the per-engine side separately);
* **escape hatch** -- engine views answer the whole read API, and
  materialization mid-run reconstructs real engines whose state is
  indistinguishable from never having used the kernel at all;
* **overflow fallbacks** (ISSUE 5 satellite) -- queries past the int64
  guard fall back to exact big-int arithmetic on both backends, agreeing
  with the vectorized path right at the boundary, and workloads that fail
  the construction-time certification never engage the kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import members_mask
from repro.algorithms.direct import DirectContributionScheduler
from repro.algorithms.greedy import fifo_select
from repro.algorithms.rand import RandScheduler
from repro.algorithms.ref import GeneralRefScheduler, RefScheduler
from repro.core import kernel as kernel_mod
from repro.core.coalition import iter_members, iter_subsets
from repro.core.engine import ClusterEngine
from repro.core.fleet import CoalitionFleet
from repro.core.kernel import (
    KERNEL_MIN_ENGINES,
    FleetKernel,
    KernelEngineView,
    kernel_certified,
)

from .conftest import make_workload, random_workload


def all_masks(k: int) -> list[int]:
    return [m for m in iter_subsets((1 << k) - 1) if m]


def transcript(result) -> list:
    return [
        (e.start, e.machine, e.job.org, e.job.index, e.job.size)
        for e in result.schedule
    ]


def reference_values(workload, masks, t, horizon, drive=True):
    out = {0: 0}
    for m in masks:
        eng = ClusterEngine(workload, list(iter_members(m)), horizon=horizon)
        if drive:
            eng.drive(fifo_select, until=t)
        else:
            while (
                nxt := eng.next_event_time()
            ) is not None and nxt <= t:
                eng.advance_to(nxt)
        if eng.t < t:
            eng.advance_to(t)
        out[m] = sum(eng.psis(t))
    return out


@pytest.fixture
def force_kernel(monkeypatch):
    monkeypatch.setattr(kernel_mod, "KERNEL_MIN_ENGINES", 1)


class TestKernelValueOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_fifo_drive_values_match_per_engine(self, seed):
        rng = np.random.default_rng(seed)
        k = 3 + seed % 2
        wl = random_workload(rng, n_orgs=k, n_jobs=25, max_release=15)
        masks = all_masks(k)
        horizon = 40
        fleet = CoalitionFleet(wl, masks, horizon=horizon, backend="kernel")
        assert fleet.kernel is not None
        for t in (0, 3, 8, 15, 27, 39):
            got = fleet.values_at(t, select=fifo_select)
            assert got == reference_values(wl, masks, t, horizon), t

    @pytest.mark.parametrize("seed", range(4))
    def test_lockstep_advance_values_match_per_engine(self, seed):
        rng = np.random.default_rng(100 + seed)
        wl = random_workload(rng, n_orgs=3, n_jobs=20, max_release=12)
        masks = all_masks(3)
        a = CoalitionFleet(wl, masks, backend="kernel")
        b = CoalitionFleet(wl, masks, backend="engines")
        for t in (0, 2, 6, 11, 19, 40):
            assert a.values_at(t) == b.values_at(t), t
            arr_a = a.values_array(t)
            arr_b = b.values_array(t)
            assert arr_a is not None and arr_b is not None
            assert arr_a.tolist() == arr_b.tolist()

    def test_retrospective_query_is_exact(self, rng):
        wl = random_workload(rng, n_orgs=2, n_jobs=10, max_release=5)
        fleet = CoalitionFleet(wl, all_masks(2), backend="kernel")
        fleet.values_at(20, select=fifo_select)  # kernel now at t=20
        early = fleet.values_at(7, select=fifo_select)
        assert early == reference_values(wl, all_masks(2), 7, None)

    def test_online_submission_matches_frozen_stream(self):
        early = [(0, 0, 2), (1, 1, 3), (4, 2, 1), (5, 0, 2)]
        late = [(11, 0, 3), (12, 1, 2), (15, 2, 4), (15, 1, 1)]
        wl_early = make_workload([1, 2, 1], early)
        wl_full = make_workload([1, 2, 1], early + late)
        late_jobs = [
            j for j in sorted(wl_full.jobs) if (j.release, j.org, j.size)
            in {(r, u, p) for r, u, p in late}
        ]
        masks = all_masks(3)
        frozen = CoalitionFleet(wl_full, masks, backend="kernel")
        fed = CoalitionFleet(wl_early, masks, backend="kernel")
        fed.values_at(5, select=fifo_select)
        for j in late_jobs:
            fed.submit(j)
        assert fed.kernel is not None  # absorbed without materializing
        for t in (10, 25, 60):
            assert fed.values_at(t, select=fifo_select) == frozen.values_at(
                t, select=fifo_select
            )

    def test_submit_many_matches_sequential_submits(self):
        """One grouped splice == N sequential splices -- including
        same-release jobs from different orgs, whose flat positions meet
        at an org-window boundary (lower org must land first)."""
        early = [(0, 0, 2), (1, 1, 3), (2, 2, 1)]
        late = [(6, 2, 2), (6, 0, 1), (6, 1, 4), (9, 0, 2), (9, 2, 5)]
        wl_early = make_workload([1, 2, 1], early)
        wl_full = make_workload([1, 2, 1], early + late)
        late_jobs = [j for j in sorted(wl_full.jobs) if j.release >= 6]
        masks = all_masks(3)
        one = CoalitionFleet(wl_early, masks, backend="kernel")
        many = CoalitionFleet(wl_early, masks, backend="kernel")
        one.values_at(4, select=fifo_select)
        many.values_at(4, select=fifo_select)
        for j in late_jobs:
            one.submit(j)
        many.submit_many(late_jobs)
        assert one.kernel is not None and many.kernel is not None
        assert many.kernel.rel_flat.tolist() == one.kernel.rel_flat.tolist()
        assert many.kernel.size_flat.tolist() == one.kernel.size_flat.tolist()
        for t in (6, 9, 15, 40):
            assert many.values_at(t, select=fifo_select) == one.values_at(
                t, select=fifo_select
            ), t


class TestKernelSchedulesBitIdentical:
    """Forced-kernel transcripts == forced-engines transcripts (the engines
    side is itself pinned by the seed golden transcripts)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_ref_and_rand(self, seed, monkeypatch):
        rng = np.random.default_rng(seed)
        k = 3 + seed % 3
        wl = random_workload(
            rng, n_orgs=k, n_jobs=7 * k, max_release=15,
            sizes=(1, 2, 3, 5), machine_counts=[1 + i % 2 for i in range(k)],
        )
        runs = [
            lambda: RefScheduler().run(wl),
            lambda: RefScheduler(horizon=12).run(wl),
            lambda: RandScheduler(n_orderings=9, seed=seed).run(wl),
        ]
        if k <= 4:  # Fractions path: keep runtime sane
            runs.append(lambda: GeneralRefScheduler().run(wl))
        for run in runs:
            monkeypatch.setattr(kernel_mod, "KERNEL_MIN_ENGINES", 1 << 30)
            want = transcript(run())
            monkeypatch.setattr(kernel_mod, "KERNEL_MIN_ENGINES", 1)
            assert transcript(run()) == want

    def test_ref_contributions_identical(self, monkeypatch):
        rng = np.random.default_rng(17)
        wl = random_workload(rng, n_orgs=5, n_jobs=25, max_release=12)
        monkeypatch.setattr(kernel_mod, "KERNEL_MIN_ENGINES", 1 << 30)
        want = RefScheduler(collect_contributions=True).run(wl).meta
        monkeypatch.setattr(kernel_mod, "KERNEL_MIN_ENGINES", 1)
        got = RefScheduler(collect_contributions=True).run(wl).meta
        assert got["contributions"] == want["contributions"]

    def test_direct_contr_unaffected(self, force_kernel, rng):
        # single-engine fleets materialize through the PolicyScheduler loop
        wl = random_workload(rng, n_orgs=3, n_jobs=15, max_release=10)
        r = DirectContributionScheduler(seed=1).run(wl)
        assert len(r.schedule) == 15


class TestEngineViews:
    def _pair(self, rng, t):
        wl = random_workload(rng, n_orgs=3, n_jobs=16, max_release=10,
                             machine_counts=[2, 1, 1])
        masks = all_masks(3)
        kf = CoalitionFleet(wl, masks, backend="kernel")
        ef = CoalitionFleet(wl, masks, backend="engines")
        kf.values_at(t, select=fifo_select)
        ef.values_at(t, select=fifo_select)
        return kf, ef, masks

    def test_views_answer_the_read_api(self, rng):
        kf, ef, masks = self._pair(rng, 9)
        for m in masks:
            view, eng = kf.engine(m), ef.engine(m)
            assert isinstance(view, KernelEngineView)
            assert view.t == eng.t
            assert view.members == eng.members
            assert view.free_count == eng.free_count
            assert view.free_machines() == eng.free_machines()
            assert view.has_waiting() == eng.has_waiting()
            assert view.waiting_orgs() == eng.waiting_orgs()
            assert view.machine_owner == eng.machine_owner
            assert view.n_machines == eng.n_machines
            assert view.machine_counts() == eng.machine_counts()
            assert view.running_counts() == eng.running_counts()
            assert view.is_idle() == eng.is_idle()
            assert view.done() == eng.done()
            assert view.ledger() == eng.ledger()
            assert view.next_event_time() == eng.next_event_time()
            for t in (4, 9, 30):
                assert view.psis(t) == eng.psis(t), (m, t)
                assert view.value(t) == eng.value(t)
                assert view.psis_by_machine_owner(t) == (
                    eng.psis_by_machine_owner(t)
                )
                assert view.busy_units(t) == eng.busy_units(t)
                assert view.utilization(t) == eng.utilization(t)
                assert view.has_event_at_or_before(t) == (
                    eng.has_event_at_or_before(t)
                )
            for u in eng.members:
                assert view.waiting_count(u) == eng.waiting_count(u)
                assert view.running_count(u) == eng.running_count(u)
                assert view.consumed_cpu(u) == eng.consumed_cpu(u)
            assert view.schedule() == eng.schedule()
            assert [
                (e.start, e.machine, e.job) for e in view.completed_log
            ] == [(e.start, e.machine, e.job) for e in eng.completed_log]

    def test_view_running_on_matches(self, rng):
        kf, ef, masks = self._pair(rng, 6)
        grand = masks[-1] if masks[-1] == 0b111 else 0b111
        view, eng = kf.engine(grand), ef.engine(grand)
        for mid in eng.machine_owner:
            a, b = view.running_on(mid), eng.running_on(mid)
            assert (a is None) == (b is None)
            if a is not None:
                assert (a.job, a.start, a.machine) == (b.job, b.start, b.machine)


class TestMaterialization:
    def test_materialized_state_is_bit_identical(self, rng):
        wl = random_workload(rng, n_orgs=3, n_jobs=20, max_release=14)
        masks = all_masks(3)
        kf = CoalitionFleet(wl, masks, backend="kernel")
        ef = CoalitionFleet(wl, masks, backend="engines")
        kf.values_at(8, select=fifo_select)
        ef.values_at(8, select=fifo_select)
        kf._materialize()
        assert kf.kernel is None
        for m in masks:
            a, b = kf.engine(m), ef.engine(m)
            assert isinstance(a, ClusterEngine)
            assert a.t == b.t
            assert a._stream == b._stream
            assert a._stream_pos == b._stream_pos
            assert a._pending == b._pending
            assert a._free_set == b._free_set
            assert sorted(a._busy) == sorted(b._busy)
            assert a._done_units == b._done_units
            assert a._done_wstart == b._done_wstart
            assert a._done_units_mach == b._done_units_mach
            assert a._done_wstart_mach == b._done_wstart_mach
            assert (a._tot_units, a._tot_wstart) == (b._tot_units, b._tot_wstart)
            assert (a._run_start_sum, a._run_start_sq) == (
                b._run_start_sum, b._run_start_sq
            )
            assert a._log == b._log
            assert a._completed == b._completed
        # and the fleets keep agreeing after further driving
        for t in (12, 20, 50):
            assert kf.values_at(t, select=fifo_select) == ef.values_at(
                t, select=fifo_select
            )

    def test_held_view_survives_materialization(self, rng):
        wl = random_workload(rng, n_orgs=2, n_jobs=10, max_release=6)
        fleet = CoalitionFleet(wl, all_masks(2), backend="kernel")
        view = fleet.engine(0b11)
        fleet.values_at(4, select=fifo_select)
        psis_before = view.psis(4)
        fleet._materialize()
        assert view.psis(4) == psis_before
        assert view._real() is fleet.engine(0b11)

    def test_view_mutators_materialize_and_delegate(self, rng):
        wl = random_workload(rng, n_orgs=2, n_jobs=8, max_release=5)
        fleet = CoalitionFleet(wl, all_masks(2), backend="kernel")
        fleet.values_at(3, select=fifo_select)
        view = fleet.engine(0b11)
        clone = view.fork()  # escapes
        assert isinstance(clone, ClusterEngine)
        assert fleet.kernel is None
        assert clone.t == fleet.engine(0b11).t

    def test_unknown_drive_policy_materializes(self, rng):
        wl = random_workload(rng, n_orgs=2, n_jobs=8, max_release=5)
        fleet = CoalitionFleet(wl, all_masks(2), backend="kernel")

        def lifo(engine):  # no kernel_policy tag
            return max(engine.waiting_orgs())

        vals = fleet.values_at(9, select=lifo)
        assert fleet.kernel is None  # escaped, still correct
        out = {0: 0}
        for m in all_masks(2):
            eng = ClusterEngine(wl, list(iter_members(m)))
            eng.drive(lifo, until=9)
            if eng.t < 9:
                eng.advance_to(9)
            out[m] = sum(eng.psis(9))
        assert vals == out

    def test_add_mask_pristine_extends_remove_materializes(self, rng):
        wl = random_workload(rng, n_orgs=3, n_jobs=9, max_release=5)
        fleet = CoalitionFleet(wl, all_masks(3)[:5], backend="kernel")
        fleet.add_mask(0b111)  # pristine: kernel absorbs the new mask
        assert fleet.kernel is not None and 0b111 in fleet
        fleet.values_at(4, select=fifo_select)
        eng = fleet.remove_mask(0b111)  # materializes, returns a real engine
        assert isinstance(eng, ClusterEngine)
        assert fleet.kernel is None and 0b111 not in fleet


class TestDispatchAndCertification:
    def test_auto_threshold(self, rng, monkeypatch):
        monkeypatch.setattr(kernel_mod, "KERNEL_MIN_ENGINES", 8)
        wl = random_workload(rng, n_orgs=3, n_jobs=9, max_release=5)
        small = CoalitionFleet(wl, all_masks(3))
        assert small.kernel is None  # 7 masks < threshold of 8
        assert KERNEL_MIN_ENGINES <= 63, "REF k>=6 should dispatch"

    def test_auto_engages_above_threshold(self, rng, monkeypatch):
        monkeypatch.setattr(kernel_mod, "KERNEL_MIN_ENGINES", 4)
        wl = random_workload(rng, n_orgs=3, n_jobs=9, max_release=5)
        fleet = CoalitionFleet(wl, all_masks(3))
        assert fleet.kernel is not None

    def test_uncertified_workload_refuses_kernel(self):
        big = 1 << 32
        wl = make_workload(
            [1, 1], [(0, 0, big), (big, 0, big), (0, 1, 2 * big)]
        )
        assert not kernel_certified(wl, None)
        fleet = CoalitionFleet(wl, all_masks(2), backend="kernel")
        assert fleet.kernel is None  # falls back to exact engines
        t = 3 * big
        got = fleet.values_at(t, select=fifo_select)
        assert got == reference_values(wl, all_masks(2), t, None)

    def test_unsafe_submit_materializes_transparently(self, rng):
        wl = random_workload(rng, n_orgs=2, n_jobs=8, max_release=5)
        fleet = CoalitionFleet(wl, all_masks(2), backend="kernel")
        fleet.values_at(3, select=fifo_select)
        from repro.core.job import Job

        huge = Job(release=5, org=0, index=99, size=(1 << 33))
        fleet.submit(huge)  # certification would break: engines take over
        assert fleet.kernel is None
        assert any(
            j is huge or j == huge
            for j in fleet.engine(0b01)._stream
        )


class TestOverflowFallback:
    """ISSUE 5 satellite: force the ledger past the _vector_safe guard and
    pin values_exact == vectorized at the boundary, on both backends."""

    #: far past any guard: t*t + t alone exceeds 1 << 62
    T_UNSAFE = 1 << 31

    def _workload(self):
        return make_workload(
            [1, 1],
            [(0, 0, 3), (1, 0, 2), (0, 1, 4), (5, 1, 1)],
        )

    def _reference(self, wl, t):
        return reference_values(wl, all_masks(2), t, None)

    @staticmethod
    def _guard_boundary(fleet) -> int:
        """Largest t (by bisection) where the vectorized query still runs --
        the exact trip point depends on the historical ledger maxima."""
        lo, hi = 0, 1 << 32
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if fleet.values_array(mid) is not None:
                lo = mid
            else:
                hi = mid
        return lo

    @pytest.mark.parametrize("backend", ["engines", "kernel"])
    def test_boundary_agreement_and_fallback(self, backend):
        wl = self._workload()
        fleet = CoalitionFleet(wl, all_masks(2), backend=backend)
        if backend == "kernel":
            assert fleet.kernel is not None
        fleet.values_at(20, select=fifo_select)  # run to completion
        t_safe = self._guard_boundary(fleet)
        assert 20 < t_safe < self.T_UNSAFE
        # at the boundary: vectorized and exact agree bit for bit
        arr = fleet.values_array(t_safe)
        assert arr is not None
        exact = fleet.values_exact(t_safe)
        assert dict(zip(fleet.masks, arr.tolist())) == {
            m: exact[m] for m in fleet.masks
        }
        assert exact == self._reference(wl, t_safe)
        # one past the boundary: the vectorized query refuses, values_at
        # falls back to exact unbounded-int arithmetic
        assert fleet.values_array(t_safe + 1) is None
        got = fleet.values_at(t_safe + 1)
        assert got == self._reference(wl, t_safe + 1)
        assert fleet.values_array(self.T_UNSAFE) is None
        assert fleet.values_at(self.T_UNSAFE) == self._reference(
            wl, self.T_UNSAFE
        )

    def test_kernel_exact_values_after_guard_trip(self):
        """The kernel's int64 ledgers stay exact (certified), so its exact
        fallback agrees with per-engine big-int arithmetic at any t."""
        wl = self._workload()
        kf = CoalitionFleet(wl, all_masks(2), backend="kernel")
        ef = CoalitionFleet(wl, all_masks(2), backend="engines")
        for t in (7, 20):
            kf.values_at(t, select=fifo_select)
            ef.values_at(t, select=fifo_select)
        for t in (1 << 20, self.T_UNSAFE, (1 << 40) + 7):
            assert kf.values_at(t) == ef.values_at(t), t

    def test_ref_survives_far_future_contribution_query(self, force_kernel):
        """REF's kernel body falls back to the exact path when a horizon far
        beyond int64 range trips the per-query guard mid-run."""
        far = 4_000_000_000  # t^2 overflows int64, t itself does not
        wl = make_workload([1, 1, 1, 1, 1], [(far, u, 1) for u in range(5)])
        fleet = CoalitionFleet(wl, all_masks(5))
        assert fleet.kernel is None  # certification rejects the far release
        result = RefScheduler().run(wl)
        assert len(result.schedule) == 5


class TestReplayEquivalenceWithKernel:
    """ISSUE 5 acceptance: online replay == batch stays bit-identical for
    every step-capable fleet policy with the kernel active on the batch
    side (and on the service's genesis fleets where it engages)."""

    @pytest.mark.parametrize("policy", ["ref", "rand", "directcontr"])
    def test_replay_equals_batch(self, policy, force_kernel, rng):
        from repro.service import ReplayDriver

        wl = random_workload(
            rng, n_orgs=3, n_jobs=14, max_release=12,
            machine_counts=[2, 1, 1],
        )
        report = ReplayDriver(wl, policy, seed=0).run()
        assert report.equivalent

    @pytest.mark.parametrize("policy", ["ref", "rand"])
    def test_replay_with_kill_restore(self, policy, force_kernel, rng):
        from repro.service import ReplayDriver

        wl = random_workload(rng, n_orgs=3, n_jobs=12, max_release=10)
        report = ReplayDriver(wl, policy, seed=0, snapshot_every=3).run()
        assert report.n_snapshots > 0
        assert report.equivalent

    def test_midstream_unsafe_submit_materializes(self, force_kernel,
                                                  monkeypatch, rng):
        """An overflow-boundary submit mid-stream trips ``KernelUnsafe``
        inside the service's grouped ingest: the fleet materializes to
        per-engine state and finishes bit-identically to a run that never
        used the kernel at all."""
        from repro.service import ClusterService

        wl = random_workload(
            rng, n_orgs=3, n_jobs=10, max_release=8,
            machine_counts=[2, 1, 1],
        )

        def stream(svc):
            for job in sorted(wl.jobs):
                svc.submit_job(job)
                svc.advance(job.release)
            svc.submit(0, 1 << 33, release=svc.clock)  # breaks certification
            svc.drain()
            return svc

        with_kernel = ClusterService(wl.machine_counts(), "ref", seed=0)
        assert with_kernel._policy.fleet.kernel is not None
        stream(with_kernel)
        assert with_kernel._policy.fleet.kernel is None  # escaped mid-run

        monkeypatch.setattr(kernel_mod, "KERNEL_MIN_ENGINES", 1 << 30)
        engines_only = stream(
            ClusterService(wl.machine_counts(), "ref", seed=0)
        )
        assert engines_only._policy.fleet.kernel is None
        assert with_kernel.schedule() == engines_only.schedule()
        assert with_kernel.n_events == engines_only.n_events


class TestKernelInternals:
    def test_materializes_equal_backends_after_horizon_cut(self, rng):
        wl = random_workload(rng, n_orgs=3, n_jobs=15, max_release=20)
        masks = all_masks(3)
        kf = CoalitionFleet(wl, masks, horizon=10, backend="kernel")
        ef = CoalitionFleet(wl, masks, horizon=10, backend="engines")
        for t in (4, 9, 15):
            assert kf.values_at(t, select=fifo_select) == ef.values_at(
                t, select=fifo_select
            ), t

    def test_start_next_via_fleet_kernel(self, rng):
        wl = make_workload([1, 1], [(0, 0, 2), (0, 1, 3)])
        fleet = CoalitionFleet(wl, all_masks(2), backend="kernel")
        fleet.advance_all(0)
        entry = fleet.start_next(0b11, 1)
        assert (entry.start, entry.job.org) == (0, 1)
        with pytest.raises(ValueError):
            fleet.start_next(0b11, 1)  # no second waiting job for org 1
        entry2 = fleet.start_next(0b11, 0)
        assert entry2.machine != entry.machine
        with pytest.raises(ValueError):
            fleet.start_next(0b01, 0, machine=99)

    def test_kernel_certified_bound(self):
        wl = make_workload([1], [(0, 0, 1)])
        assert kernel_certified(wl, None)
        assert not kernel_certified(wl, 1 << 40)

    def test_fleet_kernel_direct_event_api(self):
        wl = make_workload([1, 1], [(0, 0, 2), (4, 1, 1)])
        kern = FleetKernel(wl, [0b01, 0b10, 0b11])
        assert kern.next_event_time() == 0
        assert kern.has_event_at_or_before(0)
        kern.drive_fifo(10)
        assert kern.t == 10
        assert kern.next_event_time() is None
