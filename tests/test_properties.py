"""Tests for Propositions 4.2, 5.4, 5.5 and the Theorem 5.3 gap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.greedy import fifo_select
from repro.analysis.inapprox import order_reverse_gap
from repro.analysis.properties import (
    greedy_value_invariance,
    non_supermodular_witness,
    psi_flowtime_identity,
)

from .conftest import random_workload


class TestProp42:
    """psi_sp vs flow time for equal-size completed jobs."""

    @settings(max_examples=50, deadline=None)
    @given(
        p=st.integers(1, 8),
        starts=st.lists(st.integers(0, 30), min_size=1, max_size=6),
        data=st.data(),
    )
    def test_identity_holds(self, p, starts, data):
        releases = [
            data.draw(st.integers(0, s), label="release") for s in starts
        ]
        t = max(starts) + p + data.draw(st.integers(0, 10))
        pairs = [(s, p) for s in starts]
        psi, flow, holds = psi_flowtime_identity(pairs, releases, t)
        assert holds

    def test_implies_rank_equivalence(self):
        """Among equal-size completed-job schedules of the same job set,
        lower flow time <=> higher psi_sp."""
        p, t = 3, 30
        releases = [0, 0, 0]
        variants = [
            [(0, p), (3, p), (6, p)],
            [(0, p), (4, p), (8, p)],
            [(2, p), (5, p), (9, p)],
        ]
        scored = []
        for pairs in variants:
            psi, flow, holds = psi_flowtime_identity(pairs, releases, t)
            assert holds
            scored.append((psi, flow))
        by_psi = sorted(scored, key=lambda x: -x[0])
        by_flow = sorted(scored, key=lambda x: x[1])
        assert by_psi == by_flow

    def test_rejects_mixed_sizes(self):
        with pytest.raises(ValueError):
            psi_flowtime_identity([(0, 1), (0, 2)], [0, 0], 10)

    def test_rejects_incomplete_jobs(self):
        with pytest.raises(ValueError):
            psi_flowtime_identity([(0, 5)], [0], 3)

    def test_empty(self):
        assert psi_flowtime_identity([], [], 5) == (0, 0, True)


class TestProp54:
    """Unit jobs: every greedy algorithm gives the same coalition value."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_invariance_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        wl = random_workload(
            rng, n_orgs=3, n_jobs=30, max_release=20, sizes=(1,)
        )

        def longest_queue(engine):
            return max(
                engine.waiting_orgs(),
                key=lambda u: (engine.waiting_count(u), -u),
            )

        def lowest_org(engine):
            return engine.waiting_orgs()[0]

        times = [0, 5, 11, 17, 25, 40]
        assert greedy_value_invariance(
            wl, [fifo_select, longest_queue, lowest_org], times
        )

    def test_rejects_non_unit_jobs(self):
        rng = np.random.default_rng(0)
        wl = random_workload(rng, sizes=(2,))
        with pytest.raises(ValueError):
            greedy_value_invariance(wl, [fifo_select], [5])

    def test_invariance_fails_for_general_sizes(self):
        """The restriction to unit sizes is necessary: Fig. 7's instance
        has greedy schedules with different values."""
        from repro.core.engine import ClusterEngine

        from .conftest import make_workload

        wl = make_workload([2, 2], [(0, 0, 3)] * 4 + [(0, 1, 6)] * 2)
        t = 6

        def o1_first(engine):
            w = engine.waiting_orgs()
            return 0 if 0 in w else w[0]

        def o2_first(engine):
            w = engine.waiting_orgs()
            return 1 if 1 in w else w[0]

        values = []
        for policy in (o1_first, o2_first):
            eng = ClusterEngine(wl, horizon=t)
            eng.drive(policy, until=t)
            if eng.t < t:
                eng.advance_to(t)
            values.append(eng.value(t))
        assert values[0] != values[1]


class TestProp55:
    def test_paper_witness_numbers(self):
        w = non_supermodular_witness()
        assert (w.v_ac, w.v_bc, w.v_abc, w.v_c) == (4, 4, 7, 0)
        assert not w.is_supermodular_here


class TestTheorem53Gap:
    def test_small_cases_exact(self):
        g = order_reverse_gap(2, 1)
        # one machine, two unit jobs at t=2: utilities (2,1) vs (1,2)
        assert g.delta_psi == 2
        assert g.total_value == 3

    def test_gap_tends_to_one(self):
        ratios = [order_reverse_gap(m, 2).ratio for m in (2, 4, 8, 32, 128)]
        assert all(a < b for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] > 0.98

    def test_total_value_schedule_independent(self):
        for m in (3, 5):
            g = order_reverse_gap(m, 4)
            assert g.total_value > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            order_reverse_gap(0)
        with pytest.raises(ValueError):
            order_reverse_gap(3, 0)
