"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import Job
from repro.core.organization import Organization
from repro.core.workload import Workload


def make_workload(
    machine_counts: list[int],
    job_tuples: list[tuple[int, int, int]],
) -> Workload:
    """Build a workload from (release, org, size) triples.

    FIFO indices are assigned per organization in the listed order (releases
    must therefore be non-decreasing per organization).
    """
    orgs = [Organization(i, m) for i, m in enumerate(machine_counts)]
    counters = [0] * len(machine_counts)
    jobs = []
    for release, org, size in job_tuples:
        jobs.append(Job(release, org, counters[org], size))
        counters[org] += 1
    return Workload(orgs, jobs)


def random_workload(
    rng: np.random.Generator,
    n_orgs: int = 3,
    n_jobs: int = 30,
    max_release: int = 20,
    sizes: tuple[int, ...] = (1, 2, 3, 5),
    machine_counts: list[int] | None = None,
) -> Workload:
    """A random valid workload (per-org releases sorted to satisfy FIFO)."""
    if machine_counts is None:
        machine_counts = [1 + int(rng.integers(0, 3)) for _ in range(n_orgs)]
    per_org_releases: dict[int, list[int]] = {u: [] for u in range(n_orgs)}
    for _ in range(n_jobs):
        u = int(rng.integers(0, n_orgs))
        per_org_releases[u].append(int(rng.integers(0, max_release + 1)))
    triples = []
    for u, rels in per_org_releases.items():
        for r in sorted(rels):
            triples.append((r, u, int(rng.choice(sizes))))
    return make_workload(machine_counts, triples)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_workload() -> Workload:
    """2 orgs x 1 machine; 3 + 2 small jobs, all released early."""
    return make_workload(
        [1, 1],
        [(0, 0, 2), (0, 0, 1), (1, 0, 3), (0, 1, 2), (2, 1, 2)],
    )


@pytest.fixture
def fig7() -> Workload:
    """The Fig. 7 tight instance (4 machines, 4x size-3 + 2x size-6)."""
    return make_workload(
        [2, 2],
        [(0, 0, 3)] * 4 + [(0, 1, 6)] * 2,
    )
