"""Unit tests for repro.core.schedule (feasibility checks, metrics)."""

import pytest

from repro.core.job import Job
from repro.core.schedule import Schedule, ScheduledJob

from .conftest import make_workload


def entry(release, org, index, size, start, machine):
    return ScheduledJob(start, machine, Job(release, org, index, size))


class TestScheduleBasics:
    def test_entries_sorted_by_start(self):
        s = Schedule(
            [entry(0, 0, 1, 1, 5, 0), entry(0, 0, 0, 1, 2, 0)]
        )
        assert [e.start for e in s] == [2, 5]

    def test_org_pairs(self):
        s = Schedule(
            [entry(0, 0, 0, 3, 0, 0), entry(0, 1, 0, 2, 1, 1)]
        )
        assert s.org_pairs(0) == [(0, 3)]
        assert s.org_pairs(1) == [(1, 2)]

    def test_makespan_and_busy_units(self):
        s = Schedule(
            [entry(0, 0, 0, 3, 0, 0), entry(0, 0, 1, 4, 3, 0)]
        )
        assert s.makespan() == 7
        assert s.busy_units(0) == 0
        assert s.busy_units(3) == 3
        assert s.busy_units(5) == 5
        assert s.busy_units(100) == 7

    def test_utilization(self):
        s = Schedule([entry(0, 0, 0, 3, 0, 0)])
        assert s.utilization(6, 1) == 0.5
        with pytest.raises(ValueError):
            s.utilization(0, 1)

    def test_flow_time(self):
        s = Schedule(
            [entry(0, 0, 0, 3, 0, 0), entry(2, 0, 1, 2, 3, 0)]
        )
        # completions 3 and 5; releases 0 and 2 -> flow = 3 + 3
        assert s.flow_time() == 6
        assert s.flow_time(t=3) == 3  # only the first job finished

    def test_start_of(self):
        j = Job(0, 0, 0, 1, id=42)
        s = Schedule([ScheduledJob(7, 0, j)])
        assert s.start_of(42) == 7
        with pytest.raises(KeyError):
            s.start_of(99)


class TestValidation:
    def wl(self):
        return make_workload([1, 1], [(0, 0, 2), (1, 0, 1), (0, 1, 3)])

    def test_valid_schedule_passes(self):
        wl = self.wl()
        s = Schedule(
            [
                ScheduledJob(0, 0, wl.jobs_of(0)[0]),
                ScheduledJob(2, 0, wl.jobs_of(0)[1]),
                ScheduledJob(0, 1, wl.jobs_of(1)[0]),
            ]
        )
        s.validate(wl)

    def test_start_before_release_rejected(self):
        wl = self.wl()
        s = Schedule([ScheduledJob(0, 0, wl.jobs_of(0)[1])])
        with pytest.raises(ValueError, match="before release"):
            s.validate(wl, check_greedy=False)

    def test_machine_overlap_rejected(self):
        wl = self.wl()
        s = Schedule(
            [
                ScheduledJob(0, 0, wl.jobs_of(0)[0]),
                ScheduledJob(1, 0, wl.jobs_of(1)[0]),
            ]
        )
        with pytest.raises(ValueError, match="overlap"):
            s.validate(wl, check_greedy=False)

    def test_fifo_violation_rejected(self):
        wl = make_workload([2], [(0, 0, 2), (0, 0, 2)])
        s = Schedule(
            [
                ScheduledJob(1, 0, wl.jobs_of(0)[1]),  # index 1 first
                ScheduledJob(2, 1, wl.jobs_of(0)[0]),
            ]
        )
        with pytest.raises(ValueError, match="FIFO"):
            s.validate(wl, check_greedy=False)

    def test_greedy_violation_detected(self):
        wl = self.wl()
        # machine 1 idles at t=0 while org 1's job (released 0) waits
        s = Schedule(
            [
                ScheduledJob(0, 0, wl.jobs_of(0)[0]),
                ScheduledJob(2, 0, wl.jobs_of(0)[1]),
                ScheduledJob(3, 1, wl.jobs_of(1)[0]),
            ]
        )
        with pytest.raises(ValueError, match="greedy"):
            s.validate(wl)
        s.validate(wl, check_greedy=False)  # otherwise feasible

    def test_non_member_machine_rejected(self):
        wl = self.wl()
        s = Schedule([ScheduledJob(0, 1, wl.jobs_of(0)[0])])
        with pytest.raises(ValueError, match="outside"):
            s.validate(wl, members=[0], check_greedy=False)

    def test_non_member_job_rejected(self):
        wl = self.wl()
        # org 0's job placed on org 1's machine while only org 1 is a member
        s = Schedule([ScheduledJob(0, 0, wl.jobs_of(0)[0])])
        with pytest.raises(ValueError, match="non-member"):
            s.validate(wl, members=[1], machine_owners=[1, 0],
                       check_greedy=False)

    def test_empty_schedule_with_no_machines(self):
        wl = make_workload([0], [(0, 0, 1)])
        Schedule([]).validate(wl)  # nothing can run; vacuously greedy
