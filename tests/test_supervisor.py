"""Self-healing gateway tests (ISSUE 10, DESIGN.md §13).

Four layers, cheapest first: the pure supervisor state machine (no
processes), the seeded fault plan, the durable WAL's torn-tail
tolerance, then live fleets with scripted faults -- auto-recovery,
graceful degradation (typed refusals that never charge, park-and-drain),
quarantine, and gateway-process resume.
"""

from __future__ import annotations

import json

import pytest

from repro.gateway import (
    FaultPlan,
    Gateway,
    GatewayConfig,
    LoadSpec,
    ShardPool,
    ShardWal,
    WorkerDied,
    generate_stream,
    load_wal,
    run_loadgen,
    verify_against_batch,
    wal_path,
)
from repro.gateway.faults import FaultInjector, tear_file_tail
from repro.gateway.routing import worker_of
from repro.gateway.supervisor import (
    ADMIN_DOWN,
    DOWN,
    QUARANTINED,
    UP,
    Supervisor,
    SupervisorPolicy,
)


def small_config(**kwargs):
    defaults = dict(n_workers=2, n_shards=4, policy="fifo", seed=0)
    defaults.update(kwargs)
    n_tenants = defaults.pop("n_tenants", 8)
    return GatewayConfig.uniform(n_tenants, **defaults)


#: Fast-detection policy for process tests: a stalled or silent worker
#: is declared dead within half a second instead of a minute.
FAST = SupervisorPolicy(
    heartbeat_timeout_s=0.4,
    ping_interval_s=0.1,
    backoff_base_s=0.02,
    quarantine_cooldown_s=0.5,
    quarantine_cooldown_v=10_000.0,
)


def victim_for(config, tenant):
    """(shard, worker) owning ``tenant``."""
    shard, _ = config.routes[tenant]
    return shard, worker_of(shard, config.n_workers)


# ---------------------------------------------------------------------------
# the pure state machine (no processes)
# ---------------------------------------------------------------------------
class TestSupervisorPolicy:
    def test_backoff_is_capped_exponential_on_both_clocks(self):
        p = SupervisorPolicy(
            backoff_base_s=0.05, backoff_cap_s=2.0,
            backoff_base_v=1.0, backoff_cap_v=64.0,
        )
        assert p.backoff(1) == (0.05, 1.0)
        assert p.backoff(2) == (0.10, 2.0)
        assert p.backoff(3) == (0.20, 4.0)
        # the cap: attempt 20 would be 0.05 * 2^19 without it
        assert p.backoff(20) == (2.0, 64.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(heartbeat_timeout_s=0.0)
        with pytest.raises(ValueError):
            SupervisorPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            SupervisorPolicy(park_limit=-1)


class TestSupervisorStateMachine:
    def make(self, **kwargs):
        kwargs.setdefault("backoff_base_s", 1000.0)  # wall leg disabled
        kwargs.setdefault("backoff_base_v", 4.0)
        kwargs.setdefault("quarantine_cooldown_s", 1000.0)
        kwargs.setdefault("quarantine_cooldown_v", 50.0)
        sup = Supervisor(SupervisorPolicy(**kwargs))
        sup.register(0)
        return sup

    def test_failure_schedules_a_respawn_on_the_virtual_clock(self):
        sup = self.make()
        assert sup.state(0) == UP
        assert sup.on_failure(0, "pipe closed", vclock=10) == DOWN
        assert not sup.due_for_respawn(0, vclock=10)
        assert sup.due_for_respawn(0, vclock=14)  # 10 + backoff_base_v

    def test_repeated_failures_back_off_exponentially_then_quarantine(self):
        sup = self.make(max_restarts=2)
        sup.on_failure(0, "crash", vclock=0)       # failure 1: +4
        assert sup.meta[0].next_attempt_v == 4.0
        sup.on_respawn_attempt(0)
        sup.on_failure(0, "crash", vclock=4)       # failure 2: +8
        assert sup.meta[0].next_attempt_v == 12.0
        sup.on_respawn_attempt(0)
        assert sup.on_failure(0, "crash", vclock=12) == QUARANTINED
        assert sup.n_quarantines == 1
        # cooldown (+50 virtual) not served yet
        assert not sup.due_for_respawn(0, vclock=20)
        # served: fresh budget, back to DOWN and immediately respawnable
        assert sup.due_for_respawn(0, vclock=62)
        assert sup.meta[0].failures == 0

    def test_sustained_health_refills_the_restart_budget(self):
        sup = self.make(max_restarts=1, budget_reset_ops=5)
        sup.on_failure(0, "crash", vclock=0)
        sup.on_respawn_attempt(0)
        sup.on_healed(0)
        assert sup.meta[0].failures == 1
        for _ in range(5):
            sup.on_settled(0)
        assert sup.meta[0].failures == 0  # budget refilled
        # the next failure is failure 1 again, not a quarantine
        assert sup.on_failure(0, "crash", vclock=100) == DOWN

    def test_admin_down_is_never_auto_respawned(self):
        sup = self.make()
        assert sup.on_failure(0, "kill", vclock=0, admin=True) == ADMIN_DOWN
        assert not sup.due_for_respawn(0, vclock=10**9)
        assert not sup.due_for_respawn(0, vclock=10**9, force=True)

    def test_recoveries_record_mttr_for_auto_heals_only(self):
        sup = self.make()
        sup.on_failure(0, "crash", vclock=0)
        sup.on_respawn_attempt(0)
        sup.on_healed(0)
        assert len(sup.recoveries) == 1
        rec = sup.recoveries[0]
        assert rec["worker"] == 0 and rec["reason"] == "crash"
        assert rec["mttr_seconds"] >= 0.0
        assert sup.mttr_seconds == rec["mttr_seconds"]
        # a manual restore_worker is not an auto-recovery
        sup.on_failure(0, "crash", vclock=5)
        sup.on_respawn_attempt(0)
        sup.on_healed(0, manual=True)
        assert len(sup.recoveries) == 1

    def test_status_shape(self):
        sup = self.make()
        sup.on_failure(0, "crash", vclock=0)
        st = sup.status()
        assert st["workers"]["0"]["state"] == DOWN
        assert st["workers"]["0"]["last_failure"] == "crash"
        assert st["auto_recoveries"] == 0 and st["mttr_seconds"] is None


# ---------------------------------------------------------------------------
# the seeded fault plan
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_draw_is_deterministic_and_capped_by_incarnation(self):
        plan = FaultPlan(seed=7, rate=0.1, max_fault_incarnations=2)
        for w in range(4):
            for inc in range(2):
                assert plan.fault_for(w, inc) == plan.fault_for(w, inc)
        # incarnations at/past the cap always run clean: healing is
        # guaranteed, every crash loop terminates
        assert plan.fault_for(0, 2) is None
        assert plan.fault_for(3, 99) is None

    def test_kinds_and_fields(self):
        plan = FaultPlan(seed=3, rate=0.5, stall_seconds=0.125)
        seen = set()
        for w in range(40):
            fault = plan.fault_for(w, 0)
            if fault is None:
                continue
            seen.add(fault["kind"])
            assert fault["at_op"] >= 1
            if fault["kind"] == "stall":
                assert fault["seconds"] == 0.125
            if fault["kind"] in ("crash", "crash_late"):
                assert isinstance(fault["tear_wal"], bool)
        assert "crash" in seen and len(seen) >= 3

    def test_parse_spec_round_trip(self):
        plan = FaultPlan.parse("seed=11,rate=0.002,stall=0.25")
        assert plan.seed == 11 and plan.rate == 0.002
        assert plan.stall_seconds == 0.25
        assert FaultPlan.parse(plan.spec()) == plan

    def test_parse_script_forces_exact_faults(self):
        plan = FaultPlan.parse("rate=0,script=0.0.crash.30+1.2.stall.5")
        assert plan.fault_for(0, 0) == {"kind": "crash", "at_op": 30}
        assert plan.fault_for(1, 2) == {"kind": "stall", "at_op": 5}
        assert plan.fault_for(0, 1) is None  # rate 0: script only
        assert FaultPlan.parse(plan.spec()) == plan

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("seed")
        with pytest.raises(ValueError):
            FaultPlan.parse("bogus_key=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("script=0.0.crash")  # missing at_op
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)

    def test_injector_counts_only_shard_ops(self):
        inj = FaultInjector.from_manifest(
            {"worker": 0, "incarnation": 0, "kind": "drop_response",
             "at_op": 2}
        )
        assert inj.suppress_response() is False  # op_count still 0
        inj.before_apply()
        assert inj.suppress_response() is False
        inj.before_apply()
        assert inj.suppress_response() is True
        assert inj.fired  # at most one fault per incarnation
        assert inj.suppress_response() is False
        assert FaultInjector.from_manifest(None) is None


# ---------------------------------------------------------------------------
# the durable WAL
# ---------------------------------------------------------------------------
class TestDurableWal:
    def test_append_mark_load_round_trip(self, tmp_path):
        wal = ShardWal.create(tmp_path, 3)
        wal.append({"op": "submit", "org": 0, "size": 2})
        wal.append({"op": "advance", "t": 1})
        wal.mark_checkpoint("abc123")
        wal.append({"op": "submit", "org": 1, "size": 1})
        image = load_wal(wal_path(tmp_path, 3))
        assert [c["op"] for c in image.commands] == [
            "submit", "advance", "submit"
        ]
        assert image.markers == [("abc123", 2)]
        assert not image.torn and image.dropped_lines == 0
        assert image.replay_floor("abc123") == 2
        assert image.replay_floor("other") == 0  # no match: full replay
        assert wal.fsyncs == 1  # only the marker is a durability point

    def test_torn_tail_is_dropped_and_repaired_on_next_append(
        self, tmp_path
    ):
        wal = ShardWal.create(tmp_path, 0)
        wal.append({"op": "submit", "org": 0, "size": 1})
        wal.tear_tail()
        image = load_wal(wal.path)
        assert image.torn and image.dropped_lines == 1
        assert len(image.commands) == 1  # the torn record never acked
        # the next append must terminate the partial line first, or it
        # would corrupt itself
        wal.append({"op": "advance", "t": 2})
        image = load_wal(wal.path)
        assert [c["op"] for c in image.commands] == ["submit", "advance"]

    def test_attach_schedules_newline_repair(self, tmp_path):
        wal = ShardWal.create(tmp_path, 0)
        wal.append({"op": "submit", "org": 0, "size": 1})
        tear_file_tail(wal.path)
        resumed = ShardWal.attach(
            tmp_path, 0, next_seq=len(load_wal(wal.path).commands)
        )
        resumed.append({"op": "advance", "t": 1})
        image = load_wal(wal.path)
        assert [c["op"] for c in image.commands] == ["submit", "advance"]
        assert [c.get("t") for c in image.commands] == [None, 1]

    def test_seq_gap_is_a_hard_error(self, tmp_path):
        path = wal_path(tmp_path, 0)
        rows = [
            {"seq": 0, "cmd": {"op": "submit"}},
            {"seq": 2, "cmd": {"op": "advance"}},  # seq 1 missing
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        with pytest.raises(ValueError, match="seq gap"):
            load_wal(path)

    def test_fresh_fleet_truncates_stale_history(self, tmp_path):
        wal = ShardWal.create(tmp_path, 0)
        wal.append({"op": "submit", "org": 0, "size": 1})
        fresh = ShardWal.create(tmp_path, 0, truncate=True)
        assert load_wal(fresh.path).commands == []

    def test_save_snapshot_is_atomic(self, tmp_path):
        # the checkpoint writer goes through tmp + fsync + rename: no
        # half-written snapshot is ever visible under the final name
        from repro.service import ClusterService
        from repro.service.snapshot import load_snapshot, save_snapshot

        svc = ClusterService([2, 1], "fifo")
        svc.submit(0, 3)
        target = tmp_path / "snap.json"
        save_snapshot(svc.snapshot(), target)
        assert load_snapshot(target)["content_hash"]
        assert list(tmp_path.glob("*.tmp")) == []  # no debris


# ---------------------------------------------------------------------------
# live fleets: automatic recovery
# ---------------------------------------------------------------------------
class TestAutoRecovery:
    def run_chaos(self, plan, tmp_path, *, policy="fifo", sup=FAST,
                  n_tenants=8, events=500, **cfg):
        config = small_config(policy=policy, n_tenants=n_tenants, **cfg)
        spec = LoadSpec(n_events=events, n_releases=25, seed=4)
        with Gateway(
            config, snapshot_dir=tmp_path, supervisor=sup, fault_plan=plan
        ) as gw:
            report = run_loadgen(gw, spec)
            manual = gw.pool.restores
        assert manual == 0, "self-healing must not need restore_worker"
        return report

    def test_scripted_crash_heals_bit_identically(self, tmp_path):
        plan = FaultPlan.parse("rate=0,script=0.0.crash.25")
        report = self.run_chaos(plan, tmp_path)
        assert report.verified is True
        assert report.chaos["auto_recoveries"] >= 1
        assert report.chaos["mttr_seconds"] is not None
        assert report.chaos["quarantines"] == 0

    def test_crash_heals_for_the_kernel_ref_engine(self, tmp_path):
        plan = FaultPlan.parse("rate=0,script=1.0.crash.20")
        report = self.run_chaos(
            plan, tmp_path, policy="ref", horizon=300, events=400
        )
        assert report.verified is True
        assert report.chaos["auto_recoveries"] >= 1

    def test_drop_response_is_detected_as_a_failure(self, tmp_path):
        # the worker applies the command but never answers: a positional
        # desync only the pool's deadline/desync detection can catch
        plan = FaultPlan.parse("rate=0,script=0.0.drop_response.25")
        report = self.run_chaos(plan, tmp_path)
        assert report.verified is True
        assert report.chaos["auto_recoveries"] >= 1
        reasons = {r["reason"] for r in report.chaos["recoveries"]}
        assert any("deadline" in r or "desync" in r for r in reasons)

    def test_stall_is_detected_by_the_response_deadline(self, tmp_path):
        plan = FaultPlan.parse("rate=0,stall=1.0,script=0.0.stall.25")
        report = self.run_chaos(plan, tmp_path)
        assert report.verified is True
        assert report.chaos["auto_recoveries"] >= 1
        # the worker was alive-but-silent: only a deadline can catch it
        assert any(
            "deadline" in (r["reason"] or "")
            or "timeout" in (r["reason"] or "")
            for r in report.chaos["recoveries"]
        )

    def test_torn_checkpoint_keeps_the_previous_checkpoint(self, tmp_path):
        # the injected torn checkpoint write must fail in-band (no
        # rename), the shard must keep its full WAL, and a subsequent
        # kill/restore must recover from the surviving state
        plan = FaultPlan.parse("rate=0,script=0.0.torn_checkpoint.1")
        config = small_config(n_tenants=8)
        spec = LoadSpec(n_events=500, n_releases=25, seed=4)
        with Gateway(
            config, snapshot_dir=tmp_path, supervisor=FAST, fault_plan=plan
        ) as gw:
            report = run_loadgen(
                gw, spec, snapshot_at_release=8, kill_worker_at_release=16
            )
            assert gw.pool.restores == 1
            # exactly one of worker 0's shards failed its checkpoint and
            # therefore kept its whole WAL un-acked
            torn = [
                s for s in config.worker_shards(0)
                if s not in gw.pool.checkpointed
            ]
            assert len(torn) == 1
        assert report.verified is True

    def test_torn_wal_tail_replays_bit_identically(self, tmp_path):
        plan = FaultPlan.scripted(
            {(0, 0): {"kind": "crash", "at_op": 25, "tear_wal": True}}
        )
        report = self.run_chaos(plan, tmp_path)
        assert report.verified is True
        assert report.chaos["wal_tears"] >= 1

    def test_seeded_chaos_heals_at_scale(self, tmp_path):
        # the CI smoke plan: seeded, unscripted, multiple recoveries
        plan = FaultPlan.parse("seed=11,rate=0.002")
        report = self.run_chaos(
            plan, tmp_path, n_tenants=16, events=2000,
            n_workers=4, n_shards=8,
        )
        assert report.verified is True
        assert report.chaos["auto_recoveries"] >= 1

    def test_lost_inflight_is_surfaced_in_status(self, tmp_path):
        plan = FaultPlan.parse("rate=0,script=0.0.crash.10")
        config = small_config(n_tenants=8)
        with Gateway(
            config, snapshot_dir=tmp_path, supervisor=FAST, fault_plan=plan
        ) as gw:
            run_loadgen(gw, LoadSpec(n_events=300, n_releases=15, seed=4))
            st = gw.status()
            assert st["supervisor"]["auto_recoveries"] >= 1
            lost = st["supervisor"]["lost_inflight"]
            assert lost and all(
                row["count"] >= 1 and "op" in row["recent"][0]
                for row in lost.values()
            )


# ---------------------------------------------------------------------------
# graceful degradation: typed refusals, park-and-drain, quarantine
# ---------------------------------------------------------------------------
class TestDegradation:
    def crash_and_detect(self, gw, config, tenant):
        """Submit to ``tenant`` until its scripted worker crash is
        detected; returns (shard, worker)."""
        import time as _time

        shard, worker = victim_for(config, tenant)
        deadline = _time.monotonic() + 10.0
        while gw.pool.supervisor.state(worker) == UP:
            gw.submit(tenant, 1)
            gw.pool.tick()
            assert _time.monotonic() < deadline, "crash never detected"
            _time.sleep(0.005)
        return shard, worker

    def test_down_shard_parks_submits_and_drains_in_order(self, tmp_path):
        # long backoff: the worker stays DOWN while we assert parking
        sup = SupervisorPolicy(
            heartbeat_timeout_s=0.4, ping_interval_s=0.1,
            backoff_base_s=30.0, backoff_base_v=1e9,
        )
        plan = FaultPlan.parse("rate=0,script=0.0.crash.5")
        config = small_config(n_tenants=8)
        tenant = next(
            t for t, (s, _) in config.routes.items()
            if worker_of(s, config.n_workers) == 0
        )
        with Gateway(
            config, snapshot_dir=tmp_path, supervisor=sup, fault_plan=plan
        ) as gw:
            shard, worker = self.crash_and_detect(gw, config, tenant)
            # the worker is down but parkable: submits still ack
            resp = gw.submit(tenant, 2)
            assert resp["ok"] and resp.get("parked") is True
            assert gw.pool.parked[shard] >= 1
            before = gw.pool.parked[shard]
            gw.submit(tenant, 3)
            assert gw.pool.parked[shard] == before + 1
            # make the respawn due now, heal, and verify the full stream
            gw.pool.supervisor.meta[worker].next_attempt_wall = 0.0
            gw.pool.heal_shard(shard)
            assert gw.pool.supervisor.state(worker) == UP
            assert gw.pool.parked[shard] == 0
            gw.drain()
            digests = gw.shard_digests()
        # rebuild the accepted stream: every submit in this test was
        # accepted (parked ones included), in submission order
        n = gw.n_submitted
        stream = [(0, tenant, 1)] * (n - 2) + [(0, tenant, 2),
                                               (0, tenant, 3)]
        assert digests == verify_against_batch(config, stream)

    def test_quarantined_shard_refuses_without_charging(self, tmp_path):
        # max_restarts=0: the first detected failure quarantines at once
        sup = SupervisorPolicy(
            heartbeat_timeout_s=0.4, ping_interval_s=0.1, max_restarts=0,
            quarantine_cooldown_s=1000.0, quarantine_cooldown_v=1e9,
        )
        plan = FaultPlan.parse("rate=0,script=0.0.crash.3")
        config = small_config(n_tenants=8, rate=100.0, credits=10_000)
        tenant = next(
            t for t, (s, _) in config.routes.items()
            if worker_of(s, config.n_workers) == 0
        )
        sibling = next(
            t for t, (s, _) in config.routes.items()
            if worker_of(s, config.n_workers) != 0
        )
        with Gateway(
            config, snapshot_dir=tmp_path, supervisor=sup, fault_plan=plan
        ) as gw:
            shard, worker = self.crash_and_detect(gw, config, tenant)
            assert gw.pool.supervisor.state(worker) == QUARANTINED
            acct = gw.admission.account(tenant)
            tokens, credits = acct.bucket.tokens, acct.credits
            rejected_before = gw.n_rejected
            resp = gw.submit(tenant, 4)
            assert resp == {
                "ok": False, "tenant": tenant, "shard": shard,
                "error": resp["error"], "code": "shard_unavailable",
            }
            # a typed refusal never charges -- same contract as
            # rate_limited
            assert acct.bucket.tokens == tokens
            assert acct.credits == credits
            assert gw.n_rejected == rejected_before + 1
            by_code = gw.admission.status()[tenant]["rejected_by_code"]
            assert by_code.get("shard_unavailable", 0) >= 1
            # deterministic: the same submit refuses identically
            again = gw.submit(tenant, 4)
            assert again["code"] == "shard_unavailable"
            # sibling shards are untouched: their submits apply and the
            # final digests match batch over the sibling's own stream
            n_sib = 6
            for _ in range(n_sib):
                assert gw.submit(sibling, 1)["ok"]
            sib_shard, _ = config.routes[sibling]
            gw.pool.call(sib_shard, {"op": "drain"})
            resp = gw.pool.call(sib_shard, {"op": "snapshot"}, log=False)
            digest = resp["snapshot"]["schedule_digest"]
        expected = verify_against_batch(
            config, [(0, sibling, 1)] * n_sib
        )
        assert digest == expected[sib_shard]

    def test_rate_limited_and_shard_unavailable_both_leave_no_charge(
        self,
    ):
        config = small_config(n_tenants=4, rate=1.0, burst=1.0)
        with Gateway(config) as gw:
            t = config.tenants[0].name
            assert gw.submit(t, 1)["ok"]
            acct = gw.admission.account(t)
            tokens = acct.bucket.tokens
            resp = gw.submit(t, 1)
            assert resp["code"] == "rate_limited"
            assert acct.bucket.tokens == tokens

    def test_observation_on_down_shard_is_refused_in_band(self, tmp_path):
        from repro.gateway import ShardUnavailable

        sup = SupervisorPolicy(
            heartbeat_timeout_s=0.4, ping_interval_s=0.1,
            backoff_base_s=30.0, backoff_base_v=1e9,
        )
        plan = FaultPlan.parse("rate=0,script=0.0.crash.5")
        config = small_config(n_tenants=8)
        tenant = next(
            t for t, (s, _) in config.routes.items()
            if worker_of(s, config.n_workers) == 0
        )
        with Gateway(
            config, snapshot_dir=tmp_path, supervisor=sup, fault_plan=plan
        ) as gw:
            shard, worker = self.crash_and_detect(gw, config, tenant)
            with pytest.raises(ShardUnavailable):
                gw.pool.call(shard, {"op": "status"}, log=False)
            gw.pool.supervisor.meta[worker].next_attempt_wall = 0.0
            gw.pool.heal_shard(shard)
            assert gw.pool.call(shard, {"op": "status"}, log=False)["ok"]

    def test_park_limit_overflow_is_refused(self, tmp_path):
        sup = SupervisorPolicy(
            heartbeat_timeout_s=0.4, ping_interval_s=0.1,
            backoff_base_s=30.0, backoff_base_v=1e9, park_limit=2,
        )
        plan = FaultPlan.parse("rate=0,script=0.0.crash.5")
        config = small_config(n_tenants=8)
        tenant = next(
            t for t, (s, _) in config.routes.items()
            if worker_of(s, config.n_workers) == 0
        )
        with Gateway(
            config, snapshot_dir=tmp_path, supervisor=sup, fault_plan=plan
        ) as gw:
            shard, worker = self.crash_and_detect(gw, config, tenant)
            # fill the park buffer (detection itself may have parked the
            # triggering submit already)
            while gw.pool.parked.get(shard, 0) < 2:
                resp = gw.submit(tenant, 1)
                assert resp["ok"]
            resp = gw.submit(tenant, 1)
            assert not resp["ok"]
            assert resp["code"] == "shard_unavailable"
            assert "park buffer full" in resp["error"]
            gw.pool.supervisor.meta[worker].next_attempt_wall = 0.0
            gw.pool.heal_shard(shard)


# ---------------------------------------------------------------------------
# the gateway process itself dies: resume from durable state
# ---------------------------------------------------------------------------
class TestGatewayResume:
    def run_stream(self, config, tmp_path, spec, snapshot_at=None):
        with Gateway(config, snapshot_dir=tmp_path) as gw:
            report = run_loadgen(
                gw, spec, snapshot_at_release=snapshot_at
            )
        return report

    def test_resume_from_disk_is_bit_identical(self, tmp_path):
        config = small_config(n_tenants=8)
        spec = LoadSpec(n_events=400, n_releases=20, seed=5)
        report = self.run_stream(config, tmp_path, spec, snapshot_at=10)
        assert report.verified is True
        pool = ShardPool(config, snapshot_dir=tmp_path)
        try:
            pool.resume_from_disk()
            assert pool.shard_digests() == report.shard_digests
        finally:
            pool.close()

    def test_resume_tolerates_a_torn_wal_tail(self, tmp_path):
        config = small_config(n_tenants=8)
        spec = LoadSpec(n_events=400, n_releases=20, seed=5)
        report = self.run_stream(config, tmp_path, spec, snapshot_at=10)
        victim_shard = config.shard_ids()[-1]
        tear_file_tail(wal_path(tmp_path, victim_shard))
        pool = ShardPool(config, snapshot_dir=tmp_path)
        try:
            pool.resume_from_disk()
            assert pool.wal_torn_repairs == 1
            assert pool.shard_digests() == report.shard_digests
        finally:
            pool.close()

    def test_resume_distrusts_a_checkpoint_without_a_marker(self, tmp_path):
        # kill the marker line: resume must fall back to full genesis
        # replay instead of trusting an unproven checkpoint
        config = small_config(n_tenants=8)
        spec = LoadSpec(n_events=300, n_releases=15, seed=5)
        report = self.run_stream(config, tmp_path, spec, snapshot_at=8)
        shard = config.shard_ids()[0]
        path = wal_path(tmp_path, shard)
        kept = [
            line for line in path.read_text().splitlines()
            if "\"mark\"" not in line
        ]
        path.write_text("".join(line + "\n" for line in kept))
        pool = ShardPool(config, snapshot_dir=tmp_path)
        try:
            replayed = pool.resume_from_disk()
            image = load_wal(path)
            assert replayed[shard] == len(image.commands)  # full replay
            assert pool.shard_digests() == report.shard_digests
        finally:
            pool.close()

    def test_admin_kill_still_raises_and_requires_manual_restore(
        self, tmp_path
    ):
        # the legacy operator contract survives the supervisor: an
        # explicit kill is never auto-respawned
        config = small_config(n_tenants=8)
        with Gateway(config, snapshot_dir=tmp_path) as gw:
            gw.submit("t0", 1)
            gw.pool.barrier()
            shard, worker = victim_for(config, "t0")
            gw.kill_worker(worker)
            gw.pool.tick()
            assert gw.pool.supervisor.state(worker) == ADMIN_DOWN
            with pytest.raises(WorkerDied):
                gw.pool.call(shard, {"op": "status"})
            gw.restore_worker(worker)
            assert gw.pool.supervisor.state(worker) == UP
            resp = gw.pool.call(shard, {"op": "status"}, log=False)
            assert resp["ok"] and resp["jobs_submitted"] == 1


# ---------------------------------------------------------------------------
# loadgen + CLI surface
# ---------------------------------------------------------------------------
class TestChaosSurface:
    def test_report_chaos_block_only_with_a_plan(self, tmp_path):
        config = small_config(n_tenants=8)
        spec = LoadSpec(n_events=200, n_releases=10, seed=6)
        with Gateway(config) as gw:
            clean = run_loadgen(gw, spec)
        assert clean.chaos is None
        plan = FaultPlan.parse("rate=0,script=0.0.crash.15")
        with Gateway(
            config, snapshot_dir=tmp_path, supervisor=FAST,
            fault_plan=plan,
        ) as gw:
            chaotic = run_loadgen(gw, spec)
        assert chaotic.chaos is not None
        assert chaotic.chaos["plan"] == plan.spec()
        assert "chaos plan" in chaotic.summary()
        assert "auto recoveries" in chaotic.summary()

    def test_supervisor_block_in_gateway_status(self):
        config = small_config(n_tenants=4)
        with Gateway(config) as gw:
            st = gw.status()
            assert st["degraded"] is False
            sup = st["supervisor"]
            assert sup["workers"]["0"]["state"] == UP
            assert sup["auto_recoveries"] == 0
