"""Tests for ROUNDROBIN, GreedyFIFO, the fair share family and DIRECTCONTR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    CurrFairShareScheduler,
    DirectContributionScheduler,
    FairShareScheduler,
    GreedyFifoScheduler,
    RoundRobinScheduler,
    UtFairShareScheduler,
)

from .conftest import make_workload, random_workload

ALL_POLICY_SCHEDULERS = [
    RoundRobinScheduler,
    GreedyFifoScheduler,
    FairShareScheduler,
    UtFairShareScheduler,
    CurrFairShareScheduler,
    DirectContributionScheduler,
]


class TestRoundRobin:
    def test_cycles_through_orgs(self):
        # one machine; all jobs released at 0; RR alternates 0,1,2,0,...
        wl = make_workload(
            [1, 0, 0],
            [(0, 0, 1), (0, 0, 1), (0, 1, 1), (0, 1, 1), (0, 2, 1)],
        )
        r = RoundRobinScheduler().run(wl)
        order = [e.job.org for e in sorted(r.schedule, key=lambda e: e.start)]
        assert order == [0, 1, 2, 0, 1]

    def test_skips_empty_queues(self):
        wl = make_workload([1, 0], [(0, 0, 1), (0, 0, 1), (5, 1, 1)])
        r = RoundRobinScheduler().run(wl)
        starts = {(e.job.org, e.job.index): e.start for e in r.schedule}
        assert starts[(0, 1)] == 1  # org 1 had nothing to run yet


class TestGreedyFifo:
    def test_earliest_release_first(self):
        wl = make_workload([1, 1, 1], [(3, 0, 5), (1, 2, 5), (2, 1, 5)])
        r = GreedyFifoScheduler().run(wl)
        starts = {e.job.org: e.start for e in r.schedule}
        assert starts[2] == 1 and starts[1] == 2 and starts[0] == 3


class TestFairShareFamily:
    def test_fairshare_balances_consumed_time(self):
        """Org 0 (share 1/2) hogged the machine early; when both queues
        are nonempty the lagging org must be served first."""
        wl = make_workload(
            [1, 1],
            [(0, 0, 10), (10, 0, 2), (10, 1, 2), (10, 1, 2)],
        )
        # at t=10 both machines free and org0 consumed 10 vs org1's 0, so
        # org1's two jobs claim both machines; org0 waits for the first
        # completion at t=12
        r = FairShareScheduler().run(wl)
        starts = {(e.job.org, e.job.index): e.start for e in r.schedule}
        assert starts[(1, 0)] == 10
        assert starts[(1, 1)] == 10
        assert starts[(0, 1)] == 12

    def test_fairshare_weights_by_share(self):
        """Shares follow contributed machines: in steady state under
        backlog, the 3-machine org receives ~3x the CPU time of the
        1-machine org."""
        wl = make_workload(
            [3, 1],
            [(0, 0, 2)] * 30 + [(0, 1, 2)] * 30,
        )
        r = FairShareScheduler().run(wl)
        t = 20  # both orgs still have backlog at 20 (120 units on 4 cpus)
        units = [0, 0]
        for e in r.schedule:
            units[e.job.org] += min(e.job.size, max(0, t - e.start))
        assert units[0] + units[1] == 4 * t  # fully utilized
        assert 2.0 <= units[0] / units[1] <= 4.0

    def test_utfairshare_uses_utility(self):
        wl = make_workload([1, 1], [(0, 0, 2), (0, 1, 2), (2, 0, 2), (2, 1, 2)])
        r = UtFairShareScheduler().run(wl)
        r.schedule.validate(wl)

    def test_currfairshare_balances_running_counts(self):
        wl = make_workload(
            [2, 2],
            [(0, 0, 4)] * 4 + [(0, 1, 4)] * 2,
        )
        r = CurrFairShareScheduler().run(wl)
        wave0 = sorted(e.job.org for e in r.schedule if e.start == 0)
        assert wave0 == [0, 0, 1, 1]  # proportional to equal shares

    def test_zero_share_org_still_served_eventually(self):
        wl = make_workload([1, 0], [(0, 0, 2), (0, 1, 2)])
        for cls in (FairShareScheduler, UtFairShareScheduler, CurrFairShareScheduler):
            r = cls().run(wl)
            assert len(r.schedule) == 2, cls.__name__


class TestDirectContr:
    def test_modes(self):
        wl = make_workload([1, 1], [(0, 0, 2), (0, 1, 2), (1, 0, 1)])
        for mode in ("exact", "faithful"):
            r = DirectContributionScheduler(seed=0, mode=mode).run(wl)
            r.schedule.validate(wl)
            assert r.meta["mode"] == mode
        with pytest.raises(ValueError):
            DirectContributionScheduler(mode="bogus")

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        wl = random_workload(rng, n_orgs=3, n_jobs=25)
        a = DirectContributionScheduler(seed=7).run(wl)
        b = DirectContributionScheduler(seed=7).run(wl)
        assert a.schedule == b.schedule

    def test_machine_donor_prioritized(self):
        """The contribution heuristic must prioritize the organization
        whose machine has been serving others (same scenario as REF's
        test_prioritizes_machine_contributor)."""
        wl = make_workload(
            [1, 0],
            [(4, 0, 2), (0, 1, 2), (0, 1, 2), (4, 1, 2)],
        )
        r = DirectContributionScheduler(seed=0).run(wl)
        starts = {(e.job.org, e.job.index): e.start for e in r.schedule}
        assert starts[(0, 0)] == 4
        assert starts[(1, 2)] == 6


@pytest.mark.parametrize("scheduler_cls", ALL_POLICY_SCHEDULERS)
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2_000))
def test_all_policies_produce_feasible_greedy_schedules(scheduler_cls, seed):
    rng = np.random.default_rng(seed)
    wl = random_workload(rng, n_orgs=3, n_jobs=22)
    result = scheduler_cls().run(wl)
    result.schedule.validate(wl)


@pytest.mark.parametrize("scheduler_cls", ALL_POLICY_SCHEDULERS)
def test_all_policies_respect_coalition_membership(scheduler_cls):
    wl = make_workload([1, 1, 1], [(0, 0, 2), (0, 1, 2), (0, 2, 2)])
    result = scheduler_cls().run(wl, members=[0, 2])
    assert {e.job.org for e in result.schedule} == {0, 2}
    result.schedule.validate(wl, members=[0, 2])
