"""Tests for the Section 7 experiment harness, tables and figures."""

import numpy as np
import pytest

from repro.experiments.figures import (
    FIGURE10_PAPER_SHAPE,
    figure2_numbers,
    figure2_schedule,
    figure7_numbers,
    figure10,
)
from repro.experiments.harness import (
    DEFAULT_SCALES,
    ExperimentConfig,
    default_algorithms,
    run_experiment,
    run_instance,
    sample_instance,
)
from repro.experiments.reporting import format_cell, render_series, render_table
from repro.experiments.tables import TABLE1_PAPER, TABLE2_PAPER


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(machine_dist="pareto")
        with pytest.raises(ValueError):
            ExperimentConfig(n_orgs=0)

    def test_scale_for(self):
        cfg = ExperimentConfig()
        assert cfg.scale_for("RICC") == DEFAULT_SCALES["RICC"]
        assert ExperimentConfig(scale=0.5).scale_for("RICC") == 0.5
        assert cfg.scale_for("UNKNOWN") == 0.05

    def test_default_algorithms_match_paper_rows(self):
        names = [a.name for a in default_algorithms(100, 0)]
        assert names == [
            "RoundRobin",
            "Rand(N=15)",
            "DirectContr",
            "FairShare",
            "UtFairShare",
            "CurrFairShare",
        ]
        assert set(TABLE1_PAPER) == set(names)
        assert set(TABLE2_PAPER) == set(names)


class TestSampling:
    def test_sample_instance_deterministic(self):
        cfg = ExperimentConfig(duration=1_000, scale=0.05)
        a = sample_instance("LPC-EGEE", cfg, np.random.default_rng(7))
        b = sample_instance("LPC-EGEE", cfg, np.random.default_rng(7))
        assert a == b

    def test_sample_instance_shape(self):
        cfg = ExperimentConfig(n_orgs=4, duration=1_000, scale=0.1)
        wl = sample_instance("LPC-EGEE", cfg, np.random.default_rng(0))
        assert wl.n_orgs == 4
        assert all(j.release < 1_000 for j in wl.jobs)
        counts = wl.machine_counts()
        assert counts == tuple(sorted(counts, reverse=True))  # zipf

    def test_uniform_machine_dist(self):
        cfg = ExperimentConfig(
            n_orgs=4, duration=1_000, scale=0.1, machine_dist="uniform"
        )
        wl = sample_instance("LPC-EGEE", cfg, np.random.default_rng(0))
        counts = wl.machine_counts()
        assert max(counts) - min(counts) <= 1


class TestRunExperiment:
    def test_tiny_experiment_end_to_end(self):
        cfg = ExperimentConfig(
            traces=("LPC-EGEE",),
            n_orgs=3,
            duration=600,
            n_repeats=2,
            scale=0.08,
            seed=1,
        )
        result = run_experiment(cfg)
        assert len(result.instances) == 2
        algos = result.algorithms()
        assert "Rand(N=15)" in algos
        for alg in algos:
            mean, std = result.mean_std("LPC-EGEE", alg)
            assert mean >= 0 and std >= 0
        with pytest.raises(KeyError):
            result.mean_std("LPC-EGEE", "nope")

    def test_run_instance_custom_algorithms(self):
        from repro.algorithms import GreedyFifoScheduler, RefScheduler

        cfg = ExperimentConfig(duration=400, scale=0.08)
        wl = sample_instance("LPC-EGEE", cfg, np.random.default_rng(2))
        out = run_instance(wl, 400, [GreedyFifoScheduler(400)])
        assert set(out) == {"GreedyFIFO"}
        # REF scored against itself is perfectly fair
        out2 = run_instance(
            wl, 400, [RefScheduler(400)], reference=RefScheduler(400)
        )
        assert out2["REF"] == 0.0


class TestReporting:
    def test_format_cell(self):
        assert format_cell(0.0, 0.0) == "0 ±0"
        assert format_cell(0.014, 0.01) == "0.014 ±0.010"
        assert format_cell(5.25, 11.0) == "5.25 ±11"
        assert format_cell(238.4, 353.0) == "238 ±353"

    def test_render_table(self):
        cfg = ExperimentConfig(
            traces=("LPC-EGEE",), n_orgs=3, duration=400, n_repeats=1,
            scale=0.08, seed=3,
        )
        result = run_experiment(cfg)
        text = render_table(result, title="test table")
        assert "test table" in text
        assert "LPC-EGEE" in text
        assert "FairShare" in text

    def test_render_series(self):
        text = render_series(
            [2, 3], {"A": [0.5, 1.0], "B": [1.5, 2.0]}, "orgs", "fig"
        )
        assert "orgs" in text and "A" in text
        with pytest.raises(ValueError):
            render_series([1], {"A": [1.0, 2.0]}, "x", "t")


class TestFigures:
    def test_figure2_caption_numbers(self):
        n = figure2_numbers()
        assert (n.psi_o1_t13, n.psi_o1_t14, n.flow_time_o1) == (262, 297, 70)
        assert (n.gain_without_j2, n.loss_j6_late, n.loss_drop_j9) == (
            4, -6, -10,
        )

    def test_figure2_schedule_utilizes_three_machines(self):
        sched = figure2_schedule()
        assert {e.machine for e in sched} == {0, 1, 2}
        assert sched.makespan() == 14

    def test_figure7(self):
        assert figure7_numbers() == (1.0, 0.75)

    def test_figure10_shape_is_declared(self):
        assert "Rand(N=15)" in FIGURE10_PAPER_SHAPE

    @pytest.mark.slow
    def test_figure10_tiny_run(self):
        xs, series = figure10(
            org_counts=(2, 3), duration=600, n_repeats=1, scale=0.08,
        )
        assert xs == [2, 3]
        for name, ys in series.items():
            assert len(ys) == 2
            assert all(y >= 0 for y in ys)
