"""Tests for metrics, the comparison runner and the event queue."""

import numpy as np
import pytest

from repro.algorithms import (
    GreedyFifoScheduler,
    RefScheduler,
    RoundRobinScheduler,
)
from repro.core.events import EventQueue
from repro.sim.metrics import (
    avg_delay,
    manhattan,
    signed_gap,
    unfairness,
    utilization_ratio,
)
from repro.sim.runner import compare_algorithms

from .conftest import make_workload, random_workload


class TestEventQueue:
    def test_ordered_dedup(self):
        q = EventQueue([5, 1, 5, 3])
        q.push(1)
        assert [q.pop(), q.pop(), q.pop(), q.pop()] == [1, 3, 5, None]

    def test_stale_pushes_skipped(self):
        q = EventQueue([2])
        assert q.pop() == 2
        q.push(1)  # before the current time: can't matter
        q.push(2)
        q.push(4)
        assert q.pop() == 4

    def test_peek(self):
        q = EventQueue([3, 1])
        assert q.peek() == 1
        assert q.pop() == 1
        assert q.peek() == 3
        assert bool(q)
        q.pop()
        assert q.peek() is None
        assert not q


class TestMetrics:
    def test_manhattan(self):
        assert manhattan([1, 2, 3], [2, 0, 3]) == 3
        with pytest.raises(ValueError):
            manhattan([1], [1, 2])

    def test_signed_gap(self):
        assert signed_gap([5, 1], [2, 2]) == 2
        with pytest.raises(ValueError):
            signed_gap([1], [])

    def test_unfairness_and_avg_delay(self):
        wl = make_workload([1, 1], [(0, 0, 2), (0, 1, 2), (0, 0, 2), (0, 1, 2)])
        t = 8
        ref = RefScheduler(horizon=t).run(wl)
        same = RefScheduler(horizon=t).run(wl)
        assert unfairness(same, ref, t) == 0.0
        assert avg_delay(same, ref, t) == 0.0
        rr = RoundRobinScheduler(horizon=t).run(wl)
        assert avg_delay(rr, ref, t) >= 0.0

    def test_avg_delay_zero_ptot(self):
        wl = make_workload([1], [(100, 0, 1)])
        ref = RefScheduler(horizon=5).run(wl)
        assert avg_delay(ref, ref, 5) == 0.0

    def test_utilization_ratio(self):
        wl = make_workload([2, 2], [(0, 0, 3)] * 4 + [(0, 1, 6)] * 2)
        t = 6
        ref = GreedyFifoScheduler(horizon=t).run(wl)
        assert utilization_ratio(ref, ref, t) == 1.0


class TestCompareAlgorithms:
    def test_structure_and_ranking(self, rng):
        wl = random_workload(rng, n_orgs=3, n_jobs=25, machine_counts=[1, 1, 1])
        t = 30
        comp = compare_algorithms(
            [RoundRobinScheduler(t), GreedyFifoScheduler(t)],
            RefScheduler(t),
            wl,
            t,
        )
        assert {o.algorithm for o in comp.outcomes} == {
            "RoundRobin",
            "GreedyFIFO",
        }
        assert comp.by_name("RoundRobin").avg_delay >= 0
        with pytest.raises(KeyError):
            comp.by_name("nope")
        ranked = comp.ranking()
        delays = [comp.by_name(n).avg_delay for n in ranked]
        assert delays == sorted(delays)
        assert all(o.wall_time_s >= 0 for o in comp.outcomes)
