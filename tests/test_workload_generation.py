"""Tests for synthetic trace generation, trace profiles and transforms."""

import numpy as np
import pytest

from repro.workloads.swf import SwfJob
from repro.workloads.synthetic import SyntheticSpec, generate_jobs
from repro.workloads.traces import (
    PAPER_TRACES,
    TRACE_PROFILES,
    make_trace,
)
from repro.workloads.transforms import (
    assign_users_to_orgs,
    build_workload,
    parallel_to_sequential,
    uniform_machine_split,
    zipf_machine_split,
)


class TestSyntheticSpec:
    def test_validation(self):
        good = dict(n_machines=4, n_users=4, horizon=100, load=0.5)
        SyntheticSpec(**good)
        for field, bad in [
            ("n_machines", 0),
            ("n_users", 0),
            ("horizon", 0),
            ("load", 0),
            ("diurnal_amplitude", 2.0),
            ("parallel_prob", 1.0),
        ]:
            with pytest.raises(ValueError):
                SyntheticSpec(**{**good, field: bad})


class TestGenerator:
    def spec(self, **kw):
        base = dict(
            n_machines=8,
            n_users=6,
            horizon=2_000,
            load=0.7,
            size_mu=3.0,
            size_sigma=1.0,
            max_size=200,
            session_jobs_mean=5.0,
            session_gap_mean=10.0,
        )
        base.update(kw)
        return SyntheticSpec(**base)

    def test_deterministic_given_seed(self):
        a = generate_jobs(self.spec(), np.random.default_rng(5))
        b = generate_jobs(self.spec(), np.random.default_rng(5))
        assert a == b

    def test_load_calibration(self):
        jobs = generate_jobs(self.spec(), np.random.default_rng(0))
        work = sum(j.run * max(1, j.cpus) for j in jobs)
        target = 0.7 * 8 * 2_000
        assert 0.7 * target <= work <= 1.3 * target

    def test_submits_within_horizon_and_sorted(self):
        jobs = generate_jobs(self.spec(), np.random.default_rng(1))
        assert all(0 <= j.submit < 2_000 for j in jobs)
        assert all(
            a.submit <= b.submit for a, b in zip(jobs, jobs[1:])
        )
        assert [j.job_id for j in jobs] == list(range(1, len(jobs) + 1))

    def test_users_in_range(self):
        jobs = generate_jobs(self.spec(), np.random.default_rng(2))
        assert all(0 <= j.user < 6 for j in jobs)

    def test_sizes_bounded(self):
        jobs = generate_jobs(self.spec(max_size=50), np.random.default_rng(3))
        assert all(1 <= j.run <= 50 for j in jobs)

    def test_parallel_widths(self):
        spec = self.spec(parallel_prob=0.5, parallel_max=4)
        jobs = generate_jobs(spec, np.random.default_rng(4))
        widths = {j.cpus for j in jobs}
        assert widths <= {1, 2, 3, 4}
        assert any(w > 1 for w in widths)

    def test_flat_arrivals_without_diurnal(self):
        spec = self.spec(diurnal_amplitude=0.0)
        jobs = generate_jobs(spec, np.random.default_rng(5))
        assert len(jobs) > 10


class TestTraceProfiles:
    def test_paper_traces_present(self):
        assert set(PAPER_TRACES) == set(TRACE_PROFILES)
        assert TRACE_PROFILES["RICC"].n_machines == 8192
        assert TRACE_PROFILES["LPC-EGEE"].n_users == 56

    def test_spec_scaling(self):
        prof = TRACE_PROFILES["RICC"]
        full = prof.spec(horizon=1000, scale=1.0)
        small = prof.spec(horizon=1000, scale=0.01)
        assert full.n_machines == 8192
        assert small.n_machines == 82
        assert small.max_size < full.max_size
        assert small.load == full.load  # load factor preserved

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            TRACE_PROFILES["RICC"].spec(100, scale=0.0)
        with pytest.raises(ValueError):
            TRACE_PROFILES["RICC"].spec(100, scale=1.5)

    def test_make_trace(self):
        jobs, spec = make_trace("LPC-EGEE", 500, seed=0, scale=0.1)
        assert spec.n_machines == 7
        assert all(j.submit < 500 for j in jobs)
        with pytest.raises(KeyError):
            make_trace("NO-SUCH-TRACE", 500)

    def test_make_trace_deterministic(self):
        a, _ = make_trace("RICC", 400, seed=3, scale=0.005)
        b, _ = make_trace("RICC", 400, seed=3, scale=0.005)
        assert a == b


class TestTransforms:
    def test_parallel_to_sequential(self):
        jobs = [
            SwfJob(job_id=1, submit=0, run=10, cpus=3, user=1),
            SwfJob(job_id=2, submit=5, run=7, cpus=1, user=2),
        ]
        seq = parallel_to_sequential(jobs)
        assert len(seq) == 4
        assert all(j.cpus == 1 for j in seq)
        assert sum(j.run for j in seq) == 3 * 10 + 7
        assert [j.job_id for j in seq] == [1, 2, 3, 4]

    def test_assign_users_balanced(self):
        rng = np.random.default_rng(0)
        mapping = assign_users_to_orgs(list(range(20)), 4, rng)
        counts = [0] * 4
        for org in mapping.values():
            counts[org] += 1
        assert counts == [5, 5, 5, 5]

    def test_assign_users_keeps_users_whole(self):
        rng = np.random.default_rng(0)
        users = [3, 3, 3, 7, 7]
        mapping = assign_users_to_orgs(users, 2, rng)
        assert set(mapping) == {3, 7}

    def test_zipf_split_sums_and_sorted(self):
        counts = zipf_machine_split(70, 5)
        assert sum(counts) == 70
        assert counts == sorted(counts, reverse=True)
        assert all(c >= 1 for c in counts)

    def test_zipf_split_small_pool(self):
        assert sum(zipf_machine_split(3, 5)) == 3

    def test_uniform_split(self):
        assert uniform_machine_split(7, 3) == [3, 2, 2]
        assert uniform_machine_split(6, 3) == [2, 2, 2]

    def test_build_workload(self):
        jobs = [
            SwfJob(job_id=1, submit=0, run=5, cpus=2, user=10),
            SwfJob(job_id=2, submit=3, run=4, cpus=1, user=20),
        ]
        wl = build_workload(jobs, [2, 1], {10: 0, 20: 1})
        assert wl.n_orgs == 2
        # user 10's 2-wide job became two sequential copies for org 0
        assert [j.size for j in wl.jobs_of(0)] == [5, 5]
        assert [j.size for j in wl.jobs_of(1)] == [4]

    def test_build_workload_drops_unmapped_users(self):
        jobs = [SwfJob(job_id=1, submit=0, run=5, cpus=1, user=99)]
        wl = build_workload(jobs, [1], {10: 0})
        assert len(wl.jobs) == 0
