"""Tests for the scheduling game and the unit-job Lindley fast path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.greedy import fifo_select
from repro.core.engine import ClusterEngine
from repro.shapley.games import (
    SchedulingGame,
    TableGame,
    _lindley_served,
    unit_coalition_value,
)

from .conftest import make_workload, random_workload


class TestTableGame:
    def test_lookup(self):
        g = TableGame(2, {0: 0, 1: 3, 2: 4, 3: 10})
        assert g(3) == 10

    def test_missing_coalitions_rejected(self):
        with pytest.raises(ValueError, match="misses"):
            TableGame(2, {0: 0, 3: 10})


class TestLindley:
    def test_served_simple_queue(self):
        # 3 arrivals at slot 0, 1 server
        served = _lindley_served(np.array([3, 0, 0, 0]), 1)
        assert served.tolist() == [1, 1, 1, 0]

    def test_served_never_exceeds_capacity(self):
        rng = np.random.default_rng(0)
        releases = rng.integers(0, 5, size=50)
        for m in (1, 2, 4):
            served = _lindley_served(releases, m)
            assert served.max() <= m
            assert served.sum() <= releases.sum()

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 5_000), m=st.integers(1, 4))
    def test_unit_value_matches_engine(self, seed, m):
        """The Lindley closed form equals an actual greedy simulation."""
        rng = np.random.default_rng(seed)
        wl = random_workload(
            rng, n_orgs=2, n_jobs=25, max_release=15, sizes=(1,),
            machine_counts=[m, 0],
        )
        t = 25
        eng = ClusterEngine(wl, horizon=t)
        eng.drive(fifo_select, until=t)
        if eng.t < t:
            eng.advance_to(t)
        assert unit_coalition_value(wl, [0, 1], t) == eng.value(t)

    def test_rejects_non_unit_jobs(self):
        wl = make_workload([1], [(0, 0, 2)])
        with pytest.raises(ValueError, match="unit-size"):
            unit_coalition_value(wl, [0], 5)

    def test_zero_machines_zero_value(self):
        wl = make_workload([0], [(0, 0, 1)])
        assert unit_coalition_value(wl, [0], 10) == 0


class TestSchedulingGame:
    def wl(self):
        return make_workload(
            [1, 1, 1],
            [(0, 0, 1), (0, 0, 1), (0, 1, 1), (0, 1, 1)],
        )

    def test_prop_5_5_values(self):
        """The Prop. 5.5 witness computed through the game interface."""
        game = SchedulingGame(self.wl(), t=2)
        a, b, c = 1, 2, 4
        assert game(a | c) == 4
        assert game(b | c) == 4
        assert game(a | b | c) == 7
        assert game(c) == 0

    def test_empty_coalition_zero(self):
        assert SchedulingGame(self.wl(), 5)(0) == 0

    def test_cache_is_used(self):
        game = SchedulingGame(self.wl(), 5)
        v1 = game(0b111)
        assert game(0b111) == v1
        assert 0b111 in game._cache

    def test_fifo_and_fair_policies_agree_on_unit_jobs(self):
        """Prop. 5.4 consequence: for unit jobs the recursive fair values
        equal any-greedy values."""
        wl = self.wl()
        t = 4
        fifo = SchedulingGame(wl, t, policy="fifo")
        fair = SchedulingGame(wl, t, policy="fair")
        for mask in range(8):
            assert fifo(mask) == fair(mask), mask

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            SchedulingGame(self.wl(), 5, policy="optimal")

    def test_general_sizes_use_engine(self):
        wl = make_workload([1, 1], [(0, 0, 3), (0, 1, 2)])
        game = SchedulingGame(wl, t=6)
        # single-org coalitions schedule alone on their own machine
        assert game(0b01) == 3 * 6 - 3  # psi_sp of (0,3) at 6
        assert game(0b10) == 2 * 6 - 1  # psi_sp of (0,2) at 6
        assert game(0b11) >= game(0b01) + 0  # pooling cannot hurt org 0 here

    def test_values_for_batch(self):
        game = SchedulingGame(self.wl(), 3)
        out = game.values_for([0, 1, 7])
        assert set(out) == {0, 1, 7}
