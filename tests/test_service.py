"""Online service tests: replay == batch, snapshot/restore, membership.

The load-bearing guarantees (ISSUE 3 acceptance criteria):

* streaming any workload -- including one instance of every registered
  scenario family -- through :class:`~repro.service.ClusterService`
  yields **bit-identical** schedules to the batch ``sim/runner.py`` path,
  for every policy;
* the equivalence survives kill / ``restore()`` / resume cycles
  mid-stream (the event-sourced snapshot is a sufficient statistic);
* the golden seed transcripts (tests/golden_transcripts.py) are
  reproduced by the *online* path too, pinning the service to the
  original seed implementations across two refactor generations;
* dynamic membership behaves as documented in DESIGN.md §6 (leavers'
  running jobs finish, waiting jobs are withdrawn, machines drain).
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.engine import ClusterEngine
from repro.core.job import Job
from repro.service import ClusterService, ReplayDriver, replay_scenario
from repro.service.daemon import serve_loop
from repro.policies import build_scheduler, policy_names
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    check_snapshot,
    content_hash,
)
from repro.service.state import ServiceOp

from .conftest import make_workload, random_workload
from .golden_transcripts import GOLDEN

ALL_POLICIES = sorted(policy_names("step"))

SWF_FIXTURE = str(Path(__file__).parent / "data" / "tiny.swf")


def _transcript(schedule):
    return [
        (e.start, e.machine, e.job.org, e.job.index, e.job.size)
        for e in schedule
    ]


def _k3_workload(seed: int):
    rng = np.random.default_rng(seed)
    return random_workload(
        rng, n_orgs=3, n_jobs=14, max_release=12,
        sizes=(1, 2, 3), machine_counts=[1, 2, 1],
    )


# ----------------------------------------------------------------------
# replay == batch
# ----------------------------------------------------------------------
class TestReplayEqualsBatch:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_workload(self, policy, seed):
        rng = np.random.default_rng(100 + seed)
        wl = random_workload(rng, n_orgs=3, n_jobs=25, max_release=15)
        report = ReplayDriver(wl, policy, seed=seed).run()
        assert report.equivalent, _transcript(report.schedule)
        assert report.n_jobs == len(wl.jobs)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_with_horizon(self, policy):
        rng = np.random.default_rng(7)
        wl = random_workload(rng, n_orgs=3, n_jobs=30, max_release=25)
        report = ReplayDriver(wl, policy, seed=3, horizon=15).run()
        assert report.equivalent

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_kill_restore_every_two_groups(self, policy):
        """The acceptance bullet: snapshot / kill / restore mid-stream is
        invisible in the output."""
        rng = np.random.default_rng(42)
        wl = random_workload(rng, n_orgs=3, n_jobs=20, max_release=12)
        report = ReplayDriver(wl, policy, seed=1, snapshot_every=2).run()
        assert report.n_snapshots > 0
        assert report.equivalent

    def test_empty_workload(self):
        wl = make_workload([1, 1], [])
        report = ReplayDriver(wl, "ref").run()
        assert report.equivalent
        assert len(report.schedule) == 0


# ----------------------------------------------------------------------
# micro-batched ingest (ISSUE 6)
# ----------------------------------------------------------------------
class TestMicroBatchedIngest:
    """DESIGN.md §9: flushing the ingest buffer never runs a scheduling
    round -- rounds happen only at journaled advance/drain/observation
    points -- so every ``batch_max`` yields bit-identical schedules,
    events, journals, and snapshot hashes."""

    def _stream(self, policy: str, batch_max: "int | None"):
        from itertools import groupby

        rng = np.random.default_rng(11)
        wl = random_workload(
            rng, n_orgs=3, n_jobs=18, max_release=12,
            machine_counts=[2, 1, 1],
        )
        svc = ClusterService(
            wl.machine_counts(), policy, seed=0, batch_max=batch_max
        )
        for release, group in groupby(
            sorted(wl.jobs), key=lambda j: j.release
        ):
            for job in group:
                svc.submit_job(job)
            svc.advance(release)
        svc.drain()
        return svc

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("batch_max", [3, None])
    def test_batch_size_invisible_in_output(self, policy, batch_max):
        base = self._stream(policy, 1)  # feed-each-submit (pre-batching)
        other = self._stream(policy, batch_max)
        assert other.schedule() == base.schedule()
        assert other.n_events == base.n_events
        assert other.journal == base.journal
        assert (
            other.snapshot()["content_hash"] == base.snapshot()["content_hash"]
        )

    def test_flush_never_runs_a_round(self):
        svc = ClusterService((2, 1), "directcontr", seed=0, batch_max=None)
        svc.submit(0, 2, release=0)
        svc.submit(1, 1, release=0)
        assert svc.pending_ingest == 2  # buffered, already journaled
        assert svc.n_events == 0
        assert svc.flush_ingest() == 2
        assert svc.pending_ingest == 0
        assert svc.n_events == 0  # feeding engines is not a round
        svc.advance(0)
        assert svc.n_events > 0

    def test_batch_max_one_feeds_immediately(self):
        svc = ClusterService((2, 1), "directcontr", seed=0, batch_max=1)
        svc.submit(0, 2)
        assert svc.pending_ingest == 0

    def test_batch_max_validated(self):
        with pytest.raises(ValueError, match="batch_max"):
            ClusterService((1,), "fifo", batch_max=0)

    def test_restore_carries_batch_knob(self):
        svc = self._stream("directcontr", None)
        restored = ClusterService.restore(svc.snapshot(), batch_max=4)
        assert restored.batch_max == 4
        assert restored.schedule() == svc.schedule()


class TestGoldenReplay:
    """The online path reproduces the seed implementations' transcripts."""

    @pytest.mark.parametrize("seed", range(4))
    def test_ref(self, seed):
        wl = _k3_workload(seed)
        report = ReplayDriver(wl, "ref", snapshot_every=3).run()
        assert _transcript(report.schedule) == GOLDEN[f"k3_seed{seed}"]["ref"]
        assert report.equivalent

    @pytest.mark.parametrize("seed", range(4))
    def test_ref_horizon(self, seed):
        wl = _k3_workload(seed)
        report = ReplayDriver(wl, "ref", horizon=10).run()
        assert (
            _transcript(report.schedule) == GOLDEN[f"k3_seed{seed}"]["ref_h10"]
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_rand(self, seed):
        wl = _k3_workload(seed)
        report = ReplayDriver(
            wl,
            "rand",
            seed=seed,
            snapshot_every=4,
            policy_params={"n_orderings": 5},
        ).run()
        assert _transcript(report.schedule) == GOLDEN[f"k3_seed{seed}"]["rand"]
        assert report.equivalent

    @pytest.mark.parametrize("seed", range(4))
    def test_direct_contr(self, seed):
        wl = _k3_workload(seed)
        report = ReplayDriver(wl, "directcontr", seed=seed, snapshot_every=3).run()
        assert (
            _transcript(report.schedule)
            == GOLDEN[f"k3_seed{seed}"]["direct_exact"]
        )
        assert report.equivalent


class TestScenarioFamilies:
    """One instance of every registered family, streamed through the
    service and verified against the batch path (with mid-stream
    kill/restore), scored through the METRICS registry."""

    CASES = [
        (
            "table1",
            dict(traces=("LPC-EGEE",), duration=1_200, n_repeats=1,
                 scale=0.15, n_orgs=3),
        ),
        ("federated", dict(duration=600, n_repeats=1, n_orgs=3)),
        (
            "churn",
            dict(duration=700, n_repeats=1, org_counts=(3,),
                 zipf_exponents=(1.0,)),
        ),
        (
            "swf",
            dict(duration=400, n_repeats=1, n_orgs=3, swf_path=SWF_FIXTURE),
        ),
    ]

    @pytest.mark.parametrize("name,overrides", CASES)
    @pytest.mark.parametrize("policy", ["directcontr", "ref"])
    def test_family_replay(self, name, overrides, policy):
        report = replay_scenario(
            name,
            policy=policy,
            snapshot_every=7,
            metrics=("avg_delay", "makespan"),
            **overrides,
        )
        assert report.equivalent, (name, policy)
        assert report.n_jobs > 0
        assert set(report.metrics) == {"avg_delay", "makespan"}

    def test_metrics_match_batch_scoring(self):
        """Replayed metrics equal the batch path's scoring exactly."""
        from repro.algorithms.ref import RefScheduler
        from repro.experiments.registry import get_family, scenario_spec
        from repro.sim.runner import METRICS

        spec = scenario_spec(
            "swf", duration=400, n_repeats=1, n_orgs=3, swf_path=SWF_FIXTURE
        )
        inst = spec.instances()[0]
        workload, alg_seed = get_family(spec.family)(spec, inst)
        report = replay_scenario(
            "swf", policy="directcontr", metrics=("avg_delay",),
            duration=400, n_repeats=1, n_orgs=3, swf_path=SWF_FIXTURE,
        )
        batch = build_scheduler(
            "directcontr", seed=alg_seed, horizon=spec.duration
        )
        batch_result = batch.run(workload)
        ref_result = RefScheduler(horizon=spec.duration).run(workload)
        want = METRICS["avg_delay"](batch_result, ref_result, spec.duration)
        assert report.metrics["avg_delay"] == want


# ----------------------------------------------------------------------
# snapshot format
# ----------------------------------------------------------------------
class TestSnapshotFormat:
    def _service(self, policy="directcontr"):
        svc = ClusterService([2, 1], policy, seed=0)
        svc.submit(0, 3)
        svc.submit(1, 2)
        svc.advance(6)
        return svc

    def test_round_trip_identical(self):
        svc = self._service()
        snap = svc.snapshot()
        restored = ClusterService.restore(snap)
        assert restored.schedule() == svc.schedule()
        assert restored.clock == svc.clock
        assert restored.n_events == svc.n_events
        # snapshot of the restored service is byte-identical
        assert restored.snapshot() == snap

    def test_content_hash_detects_tampering(self):
        snap = self._service().snapshot()
        snap["journal"][0]["size"] = 99
        with pytest.raises(ValueError, match="hash mismatch"):
            ClusterService.restore(snap)

    def test_version_gate(self):
        snap = self._service().snapshot()
        snap["version"] = SNAPSHOT_VERSION + 1
        snap["content_hash"] = content_hash(snap)
        with pytest.raises(ValueError, match="version"):
            check_snapshot(snap)

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a service snapshot"):
            check_snapshot({"format": "something-else"})

    def test_restore_after_mutations_continues_identically(self):
        """A restored daemon accepts further traffic exactly like the
        original would have."""
        def drive(svc):
            svc.submit(0, 2)
            svc.advance(10)
            svc.submit(1, 1, release=12)
            svc.drain()
            return svc

        live = drive(self._service())
        resumed = drive(ClusterService.restore(self._service().snapshot()))
        assert resumed.schedule() == live.schedule()
        assert resumed.psis() == live.psis()

    def test_save_load_file(self, tmp_path):
        from repro.service import load_snapshot, save_snapshot

        snap = self._service("rand").snapshot()
        path = save_snapshot(snap, tmp_path / "svc.json")
        assert load_snapshot(path) == snap

    def test_op_kind_validated(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            ServiceOp("frobnicate", 0)


# ----------------------------------------------------------------------
# dynamic membership semantics (DESIGN.md §6)
# ----------------------------------------------------------------------
class TestDynamicMembership:
    @pytest.mark.parametrize("policy", ["ref", "rand", "directcontr", "fairshare"])
    def test_churn_journey_snapshots_cleanly(self, policy):
        svc = ClusterService([2, 1], policy, seed=0)
        svc.submit(0, 3)
        svc.submit(1, 2)
        svc.advance(0)
        org = svc.join_org(machines=2)
        assert org == 2
        svc.submit(org, 4)
        svc.advance(5)
        svc.add_machines(0, 1)
        svc.remove_machines(org, 1)
        svc.advance(10)
        svc.leave_org(1)
        svc.submit(0, 2)
        svc.drain()
        restored = ClusterService.restore(svc.snapshot())
        assert restored.schedule() == svc.schedule()
        assert restored.snapshot()["content_hash"] == (
            svc.snapshot()["content_hash"]
        )

    def test_leaver_running_job_completes_waiting_withdrawn(self):
        svc = ClusterService([1, 1], "fifo")
        svc.submit(0, 5)     # runs on org 0's machine
        svc.submit(1, 5)     # runs on org 1's machine
        svc.submit(1, 3)     # waits behind it
        svc.advance(0)
        engine = svc.policy.grand_engine()
        assert engine.running_count(1) == 1
        assert engine.waiting_count(1) == 1
        svc.leave_org(1)
        # non-preemption: the running job completes and scores utility...
        svc.drain()
        sched = svc.schedule()
        org1_jobs = [e for e in sched if e.job.org == 1]
        assert [e.job.size for e in org1_jobs] == [5]  # waiter withdrawn
        assert svc.psis()[1] > 0
        # ...and the machine drained instead of rejoining the pool
        assert engine.n_machines == 1

    def test_joiner_machines_start_work_immediately(self):
        svc = ClusterService([1], "fifo")
        svc.submit(0, 4)
        svc.submit(0, 4)   # waits: only one machine
        svc.advance(0)
        assert svc.policy.grand_engine().waiting_count(0) == 1
        svc.join_org(machines=1)
        # greedy invariant: the new machine picks up the waiting job now
        assert svc.policy.grand_engine().waiting_count(0) == 0
        entries = sorted(svc.schedule(), key=lambda e: e.job.index)
        assert [e.start for e in entries] == [0, 0]

    def test_busy_machine_drains_on_removal(self):
        svc = ClusterService([2], "fifo")
        svc.submit(0, 6)
        svc.advance(0)
        engine = svc.policy.grand_engine()
        busy = [m for m in (0, 1) if engine.running_on(m) is not None]
        assert len(busy) == 1
        # highest-id machine is chosen; make sure it is the busy one
        if busy[0] == 1:
            svc.remove_machines(0, 1)
            assert engine.n_machines == 2  # still draining
            svc.drain()
            assert engine.n_machines == 1  # retired at completion
        else:
            svc.remove_machines(0, 1)
            assert engine.n_machines == 1  # free machine retires instantly

    def test_fairshare_targets_follow_completed_drain(self):
        """Target shares must re-derive once a busy machine's drain
        completes, not stay pinned to the pre-removal pool."""
        svc = ClusterService([2, 2], "fairshare")
        svc.submit(0, 6)
        svc.submit(0, 6)
        svc.submit(1, 6)
        svc.submit(1, 6)
        svc.advance(0)  # all four machines busy
        svc.remove_machines(0, 1)  # busy: drains
        adapter = svc.policy
        assert adapter.engine.n_machines == 4  # still draining
        assert adapter.scheduler._shares == (0.5, 0.5)
        svc.advance(6)  # the drain completes at the jobs' completion
        assert adapter.engine.n_machines == 3
        assert adapter.scheduler._shares == (1 / 3, 2 / 3)

    def test_round_robin_cursor_survives_leave(self):
        """The cyclic cursor tracks org ids: a departure must not re-aim
        it at a different organization."""
        svc = ClusterService([1, 1, 1], "roundrobin")
        # all three orgs have work queued behind one running job each
        for u in (0, 1, 2):
            svc.submit(u, 4)
            svc.submit(u, 1)
        svc.advance(0)
        sched = svc.policy.scheduler
        assert sched._last_served == 2
        svc.leave_org(0)
        svc.drain()
        # after serving org 2 last, the next (and only) waiters 1 and 2
        # are served in cyclic order 1 -> 2 at t=4
        tail = [
            e.job.org
            for e in sorted(svc.schedule(), key=lambda e: (e.start, e.machine))
            if e.start > 0
        ]
        assert tail == [1, 2]

    def test_ref_size_cap_rolls_back(self):
        from repro.service.service import REF_MAX_ORGS

        svc = ClusterService([1] * REF_MAX_ORGS, "ref")
        with pytest.raises(ValueError, match="cap"):
            svc.join_org(machines=1)
        # the refusal left no trace: same membership, clean journal replay
        assert len(svc.census.members) == REF_MAX_ORGS
        restored = ClusterService.restore(svc.snapshot())
        assert restored.census.members == svc.census.members

    def test_cannot_remove_last_member(self):
        svc = ClusterService([1], "fifo")
        with pytest.raises(ValueError, match="last member"):
            svc.leave_org(0)

    def test_org_ids_never_reused(self):
        svc = ClusterService([1, 1], "fifo")
        svc.leave_org(1)
        assert svc.join_org(machines=1) == 2


# ----------------------------------------------------------------------
# ingest validation + engine mutators
# ----------------------------------------------------------------------
class TestIngestValidation:
    def test_release_clamped_to_clock(self):
        svc = ClusterService([1], "fifo")
        svc.advance(10)
        job = svc.submit(0, 1, release=3)
        assert job.release == 10

    def test_fifo_release_regression_rejected(self):
        svc = ClusterService([1], "fifo")
        svc.submit(0, 1, release=100)
        with pytest.raises(ValueError, match="FIFO"):
            svc.submit(0, 1, release=50)

    def test_explicit_index_must_match(self):
        svc = ClusterService([1], "fifo")
        svc.submit(0, 1)
        with pytest.raises(ValueError, match="index"):
            svc.submit(0, 1, index=5)

    def test_same_time_submission_after_round_still_starts(self):
        """A job arriving at an already-processed time must not idle a
        free machine (the forced-round path)."""
        svc = ClusterService([2], "fifo")
        svc.submit(0, 3)
        svc.advance(0)       # round at t=0 processed
        svc.submit(0, 2)     # arrives "now", one machine is free
        assert [e.start for e in svc.schedule()] == [0, 0]

    def test_engine_submit_into_past_rejected(self):
        wl = make_workload([1], [(0, 0, 2)])
        eng = ClusterEngine(wl)
        eng.advance_to(5)
        with pytest.raises(ValueError, match="past"):
            eng.submit(Job(3, 0, 1, 1))

    def test_engine_retire_unknown_machine(self):
        wl = make_workload([1], [])
        eng = ClusterEngine(wl)
        with pytest.raises(ValueError, match="unknown machine"):
            eng.retire_machine(7)
        eng.retire_machine(0)
        with pytest.raises(ValueError, match="already retired"):
            eng.retire_machine(0)

    def test_engine_member_bookkeeping(self):
        wl = make_workload([1, 1], [(0, 0, 1)])
        eng = ClusterEngine(wl)
        eng.add_member(2)
        assert eng.members == (0, 1, 2)
        assert eng.n_orgs == 3
        eng.add_machine(5, 2)
        assert eng.machine_counts() == [1, 1, 1]
        eng.remove_member(1)
        assert eng.members == (0, 2)
        with pytest.raises(ValueError, match="not a member"):
            eng.submit(Job(0, 1, 0, 1))


# ----------------------------------------------------------------------
# daemon loop
# ----------------------------------------------------------------------
class TestDaemon:
    def test_serve_loop_round_trip(self, tmp_path):
        svc = ClusterService([2, 1], "directcontr", seed=0)
        snap_path = tmp_path / "final.json"
        cmds = [
            {"op": "submit", "org": 0, "size": 3},
            {"op": "submit", "org": 1, "size": 2},
            {"op": "advance", "t": 4},
            {"op": "join", "machines": 1},
            {"op": "submit", "org": 2, "size": 2},
            {"op": "status"},
            {"op": "nonsense"},
            {"op": "drain"},
            {"op": "stop"},
        ]
        out = io.StringIO()
        serve_loop(
            svc,
            io.StringIO("\n".join(json.dumps(c) for c in cmds)),
            out,
            snapshot_to=str(snap_path),
        )
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [r["ok"] for r in responses] == [
            True, True, True, True, True, True, False, True, True,
        ]
        status = responses[5]
        assert status["members"] == [0, 1, 2]
        # the exit snapshot restores to the same state
        from repro.service import load_snapshot

        restored = ClusterService.restore(load_snapshot(snap_path))
        assert restored.schedule() == svc.schedule()

    def test_malformed_json_is_in_band_error(self):
        svc = ClusterService([1], "fifo")
        out = io.StringIO()
        serve_loop(svc, io.StringIO('{not json}\n5\n"x"\n[1]\n{"op":"status"}\n'), out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        # every bad line answered in-band; the daemon kept serving
        assert [r["ok"] for r in responses] == [False] * 4 + [True]

    def test_batch_linger_flushes_between_commands(self):
        """``--batch-linger-ms`` bounds buffered-job latency: with an
        unbounded ``batch_max`` and linger 0 the buffer drains as soon as
        the next command is handled, never changing the schedule."""
        svc = ClusterService((2, 1), "directcontr", seed=0, batch_max=None)
        seen = []

        def lines():
            yield json.dumps({"op": "submit", "org": 0, "size": 2})
            seen.append(svc.pending_ingest)
            yield json.dumps({"op": "submit", "org": 1, "size": 1})
            seen.append(svc.pending_ingest)
            yield json.dumps({"op": "stop"})

        serve_loop(svc, lines(), io.StringIO(), batch_linger_ms=0.0)
        # first submit only arms the linger clock; the second trips it
        assert seen == [1, 0]

        unlingered = ClusterService(
            (2, 1), "directcontr", seed=0, batch_max=None
        )
        serve_loop(
            unlingered,
            io.StringIO(
                json.dumps({"op": "submit", "org": 0, "size": 2}) + "\n"
                + json.dumps({"op": "submit", "org": 1, "size": 1}) + "\n"
                + json.dumps({"op": "stop"}) + "\n"
            ),
            io.StringIO(),
        )
        assert unlingered.pending_ingest == 2  # no linger: still buffered
        svc.drain()
        unlingered.drain()
        assert svc.schedule() == unlingered.schedule()

    def test_cli_batch_flags(self, monkeypatch, capsys):
        from repro import cli

        assert cli.main(["serve", "--batch-max", "-1"]) == 2
        monkeypatch.setattr(
            sys, "stdin", io.StringIO('{"op": "stop"}\n')
        )
        rc = cli.main(
            ["serve", "--batch-max", "0", "--batch-linger-ms", "5"]
        )
        assert rc == 0
        assert '"stopped": true' in capsys.readouterr().out

    def test_batch_counterpart_params_flow_through_registry(self):
        scheduler = build_scheduler("rand:n_orderings=30", seed=3, horizon=100)
        assert scheduler.n_orderings == 30

    def test_deprecated_dispatch_shims_removed(self):
        """The PR 4 ``POLICIES``/``batch_counterpart`` shims are gone
        (deprecation cycle complete); the registry is the only table."""
        import repro.service as service_pkg
        import repro.service.service as service_mod

        for name in ("POLICIES", "batch_counterpart"):
            with pytest.raises(AttributeError):
                getattr(service_mod, name)
        with pytest.raises(AttributeError):
            service_pkg.POLICIES
        assert "POLICIES" not in service_mod.__all__
        assert "POLICIES" not in service_pkg.__all__
        # the blessed registry path still resolves every online policy
        assert sorted(policy_names("step")) == ALL_POLICIES


# ----------------------------------------------------------------------
# service perf-gate (CI: repro bench service --check-against)
# ----------------------------------------------------------------------
class TestServicePerfGate:
    """The gated service numbers are *cost ratios* (fairness tax, restore
    over snapshot), so the regression direction is a ceiling: measured
    may not exceed committed * (1 + tolerance)."""

    COMMITTED = {
        "ratio_fifo_over_ref_k8": 30.0,
        "ratio_fifo_over_rand_k8_n75": 25.0,
        "restore_over_snapshot": 5.0,
    }

    def _check(self, tmp_path, measured):
        from repro.bench import check_service_ratios

        path = tmp_path / "committed.json"
        path.write_text(json.dumps(self.COMMITTED))
        return check_service_ratios(measured, path, tolerance=0.35)

    def test_within_tolerance_passes(self, tmp_path):
        measured = {
            "ratio_fifo_over_ref_k8": 35.0,  # worse, but under the ceiling
            "ratio_fifo_over_rand_k8_n75": 20.0,
            "restore_over_snapshot": 6.0,
            "runs": {"ref_k8": {"replay_equals_batch": True}},
        }
        assert self._check(tmp_path, measured) == []

    def test_grown_tax_fails(self, tmp_path):
        measured = dict(
            self.COMMITTED, ratio_fifo_over_ref_k8=30.0 * 1.36, runs={}
        )
        problems = self._check(tmp_path, measured)
        assert len(problems) == 1
        assert "ratio_fifo_over_ref_k8" in problems[0]

    def test_missing_field_and_non_equivalent_run_fail(self, tmp_path):
        from repro.bench import check_service_ratios

        path = tmp_path / "committed.json"
        # committed record missing two gated fields; measured record
        # missing the one the committed file does have
        path.write_text(json.dumps({"ratio_fifo_over_ref_k8": 30.0}))
        measured = {"runs": {"ref_k8": {"replay_equals_batch": False}}}
        problems = check_service_ratios(measured, path, tolerance=0.35)
        assert any(
            "ratio_fifo_over_rand_k8_n75: missing" in p for p in problems
        )
        assert any("ratio_fifo_over_ref_k8" in p for p in problems)
        assert any("replay_equals_batch" in p for p in problems)

    def test_committed_record_passes_its_own_gate(self):
        """The file in the repo must agree with the gate that reads it."""
        from repro.bench import check_service_ratios

        committed = Path(__file__).parent.parent / "BENCH_service.json"
        measured = json.loads(committed.read_text())
        assert check_service_ratios(measured, committed) == []


# ----------------------------------------------------------------------
# entry-point parity (satellite: python -m repro == repro)
# ----------------------------------------------------------------------
class TestEntryPoints:
    def test_importing_dunder_main_is_inert(self):
        # regression: `sys.exit(main())` used to run at import time
        import importlib

        import repro.__main__ as entry

        importlib.reload(entry)  # would raise SystemExit before the fix

    def test_python_dash_m_matches_console_entry(self, capsys):
        from repro.cli import main

        assert main(["scenarios"]) == 0
        want = capsys.readouterr().out
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "scenarios"],
            capture_output=True,
            text=True,
            check=True,
            cwd=str(Path(__file__).parent.parent),
        )
        assert proc.stdout == want

    def test_replay_subcommand_exit_status(self, capsys):
        from repro.cli import main

        code = main([
            "replay", "swf", "--swf", SWF_FIXTURE, "--duration", "300",
            "--orgs", "3", "--repeats", "1", "--policy", "fifo",
            "--snapshot-every", "10",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK (bit-identical)" in out
