"""The unified policy registry (PR 4): PolicySpec round-trips, typed
errors, capability gating, entry-point discovery, and the batch==online
equivalence guarantee for every policy that registers the ``step``
capability.

The dummy third-party policy defined here (``_DummyEntry``) exercises
the full extension story: a :class:`~repro.algorithms.base.
PolicyScheduler` subclass registered through the entry-point group flows
through the batch runners, the experiment pipeline, and the online
service without any of those layers naming it.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.algorithms import PolicyScheduler, Scheduler
from repro.experiments.pipeline import run_pipeline
from repro.experiments.registry import PORTFOLIO_SPECS
from repro.experiments.spec import ScenarioSpec
from repro.policies import (
    POLICY_REGISTRY,
    CapabilityError,
    ParamSpec,
    PolicyCapabilities,
    PolicyEntry,
    PolicyParamError,
    PolicySpec,
    UnknownPolicyError,
    build_online_policy,
    build_scheduler,
    discover_policies,
    get_policy,
    list_policies,
    policy_names,
    resolve_policy,
)
from repro.service import ClusterService, ReplayDriver
from repro.sim.runner import as_scheduler, compare_algorithms

from .conftest import random_workload

REPO_ROOT = Path(__file__).parent.parent


# ----------------------------------------------------------------------
# PolicySpec value-object semantics
# ----------------------------------------------------------------------
class TestPolicySpec:
    def test_roundtrip_json_and_hash_stability(self):
        spec = PolicySpec.make("rand", n_orderings=30)
        clone = PolicySpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()
        # the hash is a function of content, not construction order
        assert PolicySpec(
            "rand", (("n_orderings", 30),)
        ).content_hash() == spec.content_hash()

    def test_params_sorted_regardless_of_input_order(self):
        a = PolicySpec("x", (("b", 2), ("a", 1)))
        b = PolicySpec("x", (("a", 1), ("b", 2)))
        assert a == b and a.params == (("a", 1), ("b", 2))

    def test_parse_cli_strings(self):
        assert PolicySpec.parse("ref") == PolicySpec("ref")
        spec = PolicySpec.parse("rand:n_orderings=30")
        assert spec.param("n_orderings") == 30  # int, not str
        multi = PolicySpec.parse("x:a=1.5,b=hi,c=true")
        assert multi.params == (("a", 1.5), ("b", "hi"), ("c", True))

    def test_parse_rejects_malformed_params(self):
        with pytest.raises(PolicyParamError, match="key=value"):
            PolicySpec.parse("rand:n_orderings")

    def test_duplicate_params_rejected(self):
        with pytest.raises(PolicyParamError, match="duplicate"):
            PolicySpec("x", (("a", 1), ("a", 2)))

    def test_str_is_parseable(self):
        spec = PolicySpec.make("rand", n_orderings=9)
        assert PolicySpec.parse(str(spec)) == spec

    def test_usable_as_dict_key_and_picklable(self):
        import pickle

        spec = PolicySpec.make("directcontr", mode="faithful")
        assert {spec: 1}[pickle.loads(pickle.dumps(spec))] == 1


# ----------------------------------------------------------------------
# typed errors
# ----------------------------------------------------------------------
class TestTypedErrors:
    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(UnknownPolicyError, match="available"):
            get_policy("nope")
        # still a KeyError for legacy except clauses
        with pytest.raises(KeyError):
            build_scheduler("nope")

    def test_unknown_param_is_typed(self):
        with pytest.raises(PolicyParamError, match="no parameter"):
            resolve_policy("ref:bogus=1")

    def test_wrong_param_type_is_typed(self):
        with pytest.raises(PolicyParamError, match="expects int"):
            build_scheduler(PolicySpec.make("rand", n_orderings="many"))

    def test_batch_only_policy_refused_by_service(self):
        with pytest.raises(CapabilityError, match="step"):
            ClusterService([1, 1], "ref-general")

    def test_service_rejects_unknown_policy(self):
        with pytest.raises(UnknownPolicyError):
            ClusterService([1, 1], "nope")

    def test_service_rejects_bad_params(self):
        with pytest.raises(PolicyParamError):
            ClusterService([1, 1], "rand:bogus=3")

    def test_join_beyond_max_orgs_is_typed_at_ingest(self):
        cap = get_policy("ref").capabilities.max_orgs
        svc = ClusterService([1] * cap, "ref")
        before = set(svc.census.members)
        with pytest.raises(CapabilityError, match="max_orgs cap"):
            svc.join_org(machines=1)
        # refused before any state mutated: no rollback was needed
        assert set(svc.census.members) == before
        assert ClusterService.restore(svc.snapshot()).census.members == svc.census.members

    def test_genesis_beyond_max_orgs_is_typed(self):
        cap = get_policy("ref").capabilities.max_orgs
        with pytest.raises(CapabilityError, match="max_orgs cap"):
            ClusterService([1] * (cap + 1), "ref")


# ----------------------------------------------------------------------
# registry consistency
# ----------------------------------------------------------------------
class TestRegistryConsistency:
    def test_expected_builtins_present(self):
        assert {
            "ref", "ref-general", "rand", "directcontr", "fifo",
            "roundrobin", "fairshare", "utfairshare", "currfairshare",
        } <= set(POLICY_REGISTRY)

    def test_every_batch_policy_instantiates(self):
        """The CI registry-smoke assertion, kept in-tree too."""
        for entry in list_policies():
            if entry.capabilities.batch:
                scheduler = entry.build(seed=0, horizon=50)
                assert isinstance(scheduler, Scheduler), entry.name

    def test_every_step_policy_builds_an_online_adapter(self):
        for name in policy_names("step"):
            svc = ClusterService([2, 1], name, seed=0)
            assert svc.policy.pending() is None  # constructed, idle

    def test_capability_factory_consistency(self):
        for entry in list_policies():
            assert entry.capabilities.batch == (entry.batch_factory is not None)
            assert entry.capabilities.step == (entry.online_factory is not None)

    def test_entry_declares_step_without_factory_rejected(self):
        with pytest.raises(ValueError, match="online_factory"):
            PolicyEntry(
                name="broken", summary="",
                batch_factory=lambda p, s, h: None,
                capabilities=PolicyCapabilities(step=True),
            )

    def test_portfolio_spec_collision_leaves_maps_consistent(self):
        from repro.experiments.registry import (
            PORTFOLIOS,
            register_portfolio,
            register_portfolio_specs,
        )

        name = "collision-probe"
        register_portfolio(name, lambda horizon, seed: [])
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_portfolio_specs(name, ("fifo",))
            # the failed call must not leave stale declarative rows
            assert name not in PORTFOLIO_SPECS
        finally:
            PORTFOLIOS.pop(name, None)

    def test_paper_portfolio_rows_resolve_through_registry(self):
        rows = PORTFOLIO_SPECS["paper"]
        assert [r.name for r in rows] == [
            "roundrobin", "rand", "directcontr", "fairshare",
            "utfairshare", "currfairshare",
        ]
        for row in rows:
            assert row.name in POLICY_REGISTRY

    def test_no_duplicate_dispatch_tables_in_source(self):
        """Acceptance bullet: policy-name -> constructor dispatch exists
        only in the registry module (and spec rows referencing it)."""
        import re

        src = REPO_ROOT / "src" / "repro"
        offenders = []
        # a dispatch table names a policy string next to a Scheduler class
        pattern = re.compile(
            r"[\"'](?:directcontr|roundrobin|fairshare)[\"']\s*:"
        )
        for path in src.rglob("*.py"):
            if path.name == "policies.py":
                continue
            if pattern.search(path.read_text(encoding="utf-8")):
                offenders.append(str(path))
        assert not offenders, offenders


# ----------------------------------------------------------------------
# runner-level resolution
# ----------------------------------------------------------------------
class TestRunnerResolution:
    def test_compare_algorithms_accepts_names_specs_and_instances(self):
        rng = np.random.default_rng(5)
        wl = random_workload(rng, n_orgs=3, n_jobs=12, max_release=8)
        t_end = 20
        mixed = compare_algorithms(
            ["roundrobin", PolicySpec.make("rand", n_orderings=5),
             build_scheduler("fairshare", horizon=t_end)],
            "ref", wl, t_end, seed=3,
        )
        legacy = compare_algorithms(
            [build_scheduler("roundrobin", horizon=t_end),
             build_scheduler("rand:n_orderings=5", seed=3, horizon=t_end),
             build_scheduler("fairshare", horizon=t_end)],
            build_scheduler("ref", horizon=t_end), wl, t_end,
        )
        assert [o.algorithm for o in mixed.outcomes] == [
            o.algorithm for o in legacy.outcomes
        ]
        assert [o.avg_delay for o in mixed.outcomes] == [
            o.avg_delay for o in legacy.outcomes
        ]

    def test_as_scheduler_passes_instances_through(self):
        inst = build_scheduler("fifo", horizon=9)
        assert as_scheduler(inst) is inst


# ----------------------------------------------------------------------
# scenario specs embedding policy specs
# ----------------------------------------------------------------------
class TestScenarioSpecPolicies:
    KW = dict(
        family="synthetic", traces=("LPC-EGEE",), n_orgs=3, duration=800,
        n_repeats=2, scale=0.08, seed=7,
    )

    def test_hash_unchanged_without_policies(self):
        # pinned from the pre-registry ScenarioSpec (PR 2): existing
        # on-disk caches must stay valid through the API redesign
        assert ScenarioSpec(**self.KW).content_hash() == "ce6f23c71bc43b01"

    def test_policies_field_changes_hash_and_normalizes(self):
        spec = ScenarioSpec(
            policies=("fifo", PolicySpec.make("rand", n_orderings=5)),
            **self.KW,
        )
        assert spec.content_hash() != ScenarioSpec(**self.KW).content_hash()
        assert all(isinstance(p, PolicySpec) for p in spec.policies)

    def test_pipeline_builds_embedded_policies(self, tmp_path):
        spec = ScenarioSpec(
            policies=("roundrobin", "fairshare"), **self.KW
        )
        result = run_pipeline(spec, cache_dir=tmp_path)
        (group,) = result.groups()
        algs = sorted(result.aggregates[group]["avg_delay"])
        assert algs == ["FairShare", "RoundRobin"]
        # embedded rows must match the equivalent named portfolio exactly
        named = run_pipeline(ScenarioSpec(portfolio="fast", **self.KW))
        for alg in algs:
            assert (
                result.aggregates[group]["avg_delay"][alg]
                == named.aggregates[group]["avg_delay"][alg]
            )

    def test_embedded_policies_resume_from_cache(self, tmp_path):
        spec = ScenarioSpec(policies=("fifo",), **self.KW)
        first = run_pipeline(spec, cache_dir=tmp_path)
        again = run_pipeline(spec, cache_dir=tmp_path)
        assert (first.computed, first.cached) == (2, 0)
        assert (again.computed, again.cached) == (0, 2)


# ----------------------------------------------------------------------
# third-party policies via entry points
# ----------------------------------------------------------------------
class _LongestQueueScheduler(PolicyScheduler):
    """Dummy third-party policy: serve the org with the longest queue."""

    name = "LongestQueue"

    def select(self, engine):
        """Pick the waiting organization with the most waiting jobs."""
        return max(
            engine.waiting_orgs(),
            key=lambda u: (engine.waiting_count(u), -u),
        )


def _dummy_entry(name: str = "longestqueue") -> PolicyEntry:
    def batch(params, seed, horizon):
        return _LongestQueueScheduler(horizon=horizon)

    def online(service, params):
        from repro.service.service import _SingleEnginePolicy

        return _SingleEnginePolicy(
            service, batch(params, service.seed, service.horizon)
        )

    return PolicyEntry(
        name=name,
        summary="dummy third-party policy (tests)",
        batch_factory=batch,
        online_factory=online,
        paper_section="n/a",
    )


class _FakeEntryPoint:
    name = "longestqueue"

    @staticmethod
    def load():
        return lambda: _dummy_entry()


@pytest.fixture
def registry_sandbox(monkeypatch):
    """Snapshot/restore the global registry around a mutation test."""
    import repro.policies as pol

    saved = dict(POLICY_REGISTRY)
    saved_flag = pol._discovered
    yield monkeypatch
    POLICY_REGISTRY.clear()
    POLICY_REGISTRY.update(saved)
    pol._discovered = saved_flag


class TestEntryPointDiscovery:
    def test_dummy_policy_flows_through_every_layer(self, registry_sandbox):
        import repro.policies as pol

        registry_sandbox.setattr(
            pol, "entry_points",
            lambda group: [_FakeEntryPoint()] if group == pol.ENTRY_POINT_GROUP else [],
        )
        added = discover_policies(force=True)
        assert added == ["longestqueue"]

        rng = np.random.default_rng(11)
        wl = random_workload(rng, n_orgs=3, n_jobs=15, max_release=10)

        # batch runner, by name
        comparison = compare_algorithms(["longestqueue"], "ref", wl, 30)
        assert comparison.outcomes[0].algorithm == "LongestQueue"

        # pipeline, embedded in a scenario spec
        spec = ScenarioSpec(
            family="synthetic", traces=("LPC-EGEE",), n_orgs=3,
            duration=600, n_repeats=1, scale=0.08, seed=3,
            policies=("longestqueue",),
        )
        result = run_pipeline(spec)
        (group,) = result.groups()
        assert "LongestQueue" in result.aggregates[group]["avg_delay"]

        # online service + replay equivalence (step capability honored)
        report = ReplayDriver(wl, "longestqueue", seed=0).run()
        assert report.equivalent

    def test_broken_entry_point_warns_but_does_not_break(self, registry_sandbox):
        import repro.policies as pol

        class Broken:
            name = "broken"

            @staticmethod
            def load():
                raise RuntimeError("boom")

        registry_sandbox.setattr(
            pol, "entry_points", lambda group: [Broken()]
        )
        with pytest.warns(RuntimeWarning, match="failed to load"):
            added = discover_policies(force=True)
        assert added == []
        assert "ref" in POLICY_REGISTRY  # registry intact

    def test_colliding_entry_point_name_warns(self, registry_sandbox):
        import repro.policies as pol

        class Colliding:
            name = "shadow-ref"

            @staticmethod
            def load():
                return _dummy_entry("ref")  # collides with the builtin

        registry_sandbox.setattr(
            pol, "entry_points", lambda group: [Colliding()]
        )
        with pytest.warns(RuntimeWarning, match="already registered"):
            assert discover_policies(force=True) == []
        # the builtin won: still the exact REF entry
        assert get_policy("ref").capabilities.max_orgs == 10

    def test_discovery_is_idempotent(self, registry_sandbox):
        import repro.policies as pol

        calls = []
        registry_sandbox.setattr(
            pol, "entry_points", lambda group: calls.append(group) or []
        )
        discover_policies(force=True)
        discover_policies()
        assert len(calls) == 1


# ----------------------------------------------------------------------
# batch == online equivalence for every step-capable policy
# ----------------------------------------------------------------------
class TestStepCapabilityContract:
    """A policy that registers ``step`` promises ReplayDriver
    equivalence; this catches future policies that claim it wrongly."""

    @pytest.mark.parametrize("name", sorted(policy_names("step")))
    def test_replay_equals_batch_on_golden_workload(self, name):
        rng = np.random.default_rng(0)
        wl = random_workload(
            rng, n_orgs=3, n_jobs=14, max_release=12,
            sizes=(1, 2, 3), machine_counts=[1, 2, 1],
        )
        report = ReplayDriver(wl, name, seed=0, snapshot_every=3).run()
        assert report.equivalent, f"{name} violates its step capability"

    def test_build_online_policy_requires_step(self):
        svc = ClusterService([1, 1], "fifo")
        with pytest.raises(CapabilityError, match="step"):
            build_online_policy(svc, "ref-general")


# ----------------------------------------------------------------------
# CLI + api facade
# ----------------------------------------------------------------------
class TestCliAndFacade:
    def test_policies_subcommand_lists_registry(self, capsys):
        from repro.cli import main

        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for entry in list_policies():
            assert entry.name in out
            assert entry.paper_section.split(",")[0] in out
        assert "max_orgs=10" in out

    def test_policies_capability_filter(self, capsys):
        from repro.cli import main

        assert main(["policies", "--capability", "step"]) == 0
        out = capsys.readouterr().out
        assert "ref-general" not in out
        with pytest.raises(SystemExit):
            main(["policies", "--capability", "bogus"])
        with pytest.raises(SystemExit):
            # a method name is not a capability field
            main(["policies", "--capability", "summary"])

    def test_policy_help_derived_from_registry(self):
        from repro.cli import build_parser

        help_text = build_parser().format_help()
        # can't drift: the replay/serve --policy help names every
        # step-capable policy
        from repro.cli import _policy_flag_help

        derived = _policy_flag_help("service policy")
        for name in policy_names("step"):
            assert name in derived

    def test_console_and_module_policies_agree(self, capsys):
        from repro.cli import main

        assert main(["policies"]) == 0
        want = capsys.readouterr().out
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "policies"],
            capture_output=True, text=True, check=True,
            cwd=str(REPO_ROOT),
        )
        assert proc.stdout == want

    def test_api_facade_resolves_and_is_sorted(self):
        from repro import api

        assert list(api.__all__) == sorted(set(api.__all__))
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_api_surface_snapshot_matches_code(self):
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            import api_surface
        finally:
            sys.path.pop(0)
        want = api_surface.render()
        have = (REPO_ROOT / "API_SURFACE.txt").read_text(encoding="utf-8")
        assert have == want, (
            "API_SURFACE.txt is stale; regenerate with "
            "`PYTHONPATH=src python tools/api_surface.py --write` after "
            "reviewing the surface change"
        )

    def test_top_level_quickstart_names(self):
        for name in ("PolicySpec", "build_scheduler", "list_policies",
                     "POLICY_REGISTRY", "CapabilityError", "api"):
            assert name in repro.__all__
