"""Unit and property tests for the event-driven cluster engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.greedy import fifo_select
from repro.core.engine import ClusterEngine
from repro.sim.tick_reference import TickSimulator
from repro.utility.strategyproof import psi_sp

from .conftest import make_workload, random_workload


class TestEngineMechanics:
    def test_release_then_start(self):
        wl = make_workload([1], [(2, 0, 3)])
        eng = ClusterEngine(wl)
        assert eng.next_event_time() == 2
        eng.advance_to(2)
        assert eng.waiting_count(0) == 1
        eng.start_next(0)
        assert eng.waiting_count(0) == 0
        assert eng.next_event_time() == 5  # completion
        eng.advance_to(5)
        assert eng.done()

    def test_cannot_go_backwards(self):
        eng = ClusterEngine(make_workload([1], [(0, 0, 1)]))
        eng.advance_to(5)
        with pytest.raises(ValueError):
            eng.advance_to(4)

    def test_start_without_waiting_rejected(self):
        eng = ClusterEngine(make_workload([1], [(3, 0, 1)]))
        with pytest.raises(ValueError, match="no waiting job"):
            eng.start_next(0)

    def test_start_without_free_machine_rejected(self):
        wl = make_workload([1], [(0, 0, 5), (0, 0, 5)])
        eng = ClusterEngine(wl)
        eng.advance_to(0)
        eng.start_next(0)
        with pytest.raises(ValueError, match="free machine"):
            eng.start_next(0)

    def test_specific_machine_choice(self):
        wl = make_workload([2], [(0, 0, 3), (0, 0, 3)])
        eng = ClusterEngine(wl)
        eng.advance_to(0)
        entry = eng.start_next(0, machine=1)
        assert entry.machine == 1
        with pytest.raises(ValueError, match="not free"):
            eng.start_next(0, machine=1)

    def test_machine_owner_layout(self):
        wl = make_workload([2, 1], [])
        eng = ClusterEngine(wl)
        assert eng.machine_owner == {0: 0, 1: 0, 2: 1}
        sub = ClusterEngine(wl, members=[1])
        assert sub.machine_owner == {2: 1}

    def test_zero_machine_coalition_never_starts(self):
        wl = make_workload([0], [(0, 0, 2)])
        eng = ClusterEngine(wl)
        eng.drive(lambda e: 0)
        assert eng.schedule().entries == ()
        assert eng.value(10) == 0

    def test_horizon_stops_events(self):
        wl = make_workload([1], [(0, 0, 1), (100, 0, 1)])
        eng = ClusterEngine(wl, horizon=50)
        eng.drive(fifo_select)
        assert len(eng.schedule()) == 1

    def test_fifo_order_enforced_by_queue(self):
        wl = make_workload([1], [(0, 0, 5), (0, 0, 1)])
        eng = ClusterEngine(wl)
        eng.advance_to(0)
        entry = eng.start_next(0)
        assert entry.job.index == 0  # the first submitted job runs first


class TestUtilityAggregates:
    def test_psi_matches_closed_form(self):
        wl = make_workload([2, 1], [(0, 0, 3), (0, 0, 2), (1, 1, 4)])
        eng = ClusterEngine(wl)
        eng.drive(fifo_select)
        sched = eng.schedule()
        for t in range(0, 10):
            expected = [psi_sp(sched.org_pairs(u), t) for u in range(2)]
            assert eng.psis(t) == expected
            assert eng.value(t) == sum(expected)

    def test_psi_of_running_job(self):
        wl = make_workload([1], [(0, 0, 10)])
        eng = ClusterEngine(wl)
        eng.advance_to(0)
        eng.start_next(0)
        # 3 executed units at t=3 worth 3+2+1
        assert eng.psi(0, 3) == 6
        assert eng.psi(0, 0) == 0

    def test_psis_by_machine_owner(self):
        # org 1's job runs on org 0's machine
        wl = make_workload([1, 0], [(0, 1, 2)])
        eng = ClusterEngine(wl)
        eng.drive(fifo_select)
        t = 4
        assert eng.psis(t) == [0, psi_sp([(0, 2)], t)]
        assert eng.psis_by_machine_owner(t) == [psi_sp([(0, 2)], t), 0]

    def test_consumed_cpu(self):
        wl = make_workload([1], [(0, 0, 4)])
        eng = ClusterEngine(wl)
        eng.advance_to(0)
        eng.start_next(0)
        assert eng.consumed_cpu(0, 2) == 2
        eng.advance_to(4)
        assert eng.consumed_cpu(0, 4) == 4
        assert eng.consumed_cpu(0, 100) == 4  # completed work is capped

    def test_busy_units_and_utilization(self):
        wl = make_workload([2], [(0, 0, 3), (0, 0, 3)])
        eng = ClusterEngine(wl)
        eng.drive(fifo_select)
        assert eng.busy_units(3) == 6
        assert eng.utilization(3) == 1.0
        assert eng.busy_units(2) == 4  # retrospective query from the log


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_event_driven_equals_tick_reference(seed):
    """The engine's event-driven schedule is identical to a literal
    tick-by-tick simulation under the same greedy selection policy."""
    rng = np.random.default_rng(seed)
    wl = random_workload(rng, n_orgs=3, n_jobs=20, max_release=15)

    eng = ClusterEngine(wl)
    eng.drive(fifo_select)
    event_schedule = eng.schedule()

    def tick_fifo(sim):
        return min(
            sim.waiting_orgs(), key=lambda u: (sim.head_release(u), u)
        )

    horizon = sum(j.size for j in wl.jobs) + 20
    tick_schedule = TickSimulator(wl).run(tick_fifo, until=horizon)
    assert event_schedule == tick_schedule


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_engine_schedules_are_feasible_and_greedy(seed):
    rng = np.random.default_rng(seed)
    wl = random_workload(rng, n_orgs=3, n_jobs=25)
    eng = ClusterEngine(wl)
    eng.drive(fifo_select)
    eng.schedule().validate(wl)  # includes the greedy replay check


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), horizon=st.integers(1, 40))
def test_horizon_prefix_property(seed, horizon):
    """Stopping at a horizon yields exactly the prefix of the full run
    restricted to starts before the horizon (online consistency)."""
    rng = np.random.default_rng(seed)
    wl = random_workload(rng, n_orgs=2, n_jobs=15)
    full = ClusterEngine(wl)
    full.drive(fifo_select)
    cut = ClusterEngine(wl, horizon=horizon)
    cut.drive(fifo_select)
    full_prefix = [e for e in full.schedule() if e.start < horizon]
    assert list(cut.schedule()) == full_prefix
