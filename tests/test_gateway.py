"""Gateway subsystem tests (PR 8): routing, admission, the worker loop,
the subprocess fleet, crash recovery, and the CLI surface.

The load-bearing assertions are the bit-identity ones: a sharded fleet
driven online -- including one that was checkpointed under load, had a
worker SIGKILLed mid-stream and restored -- must produce, per shard,
exactly the schedule the single-machine batch scheduler produces for
that shard's workload (verified by ``schedule_digest``).
"""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.gateway import (
    AdmissionController,
    AdmissionError,
    Gateway,
    GatewayConfig,
    LoadSpec,
    TenantSpec,
    TokenBucket,
    WorkerDied,
    generate_stream,
    run_loadgen,
    shard_of,
    stable_hash,
    verify_against_batch,
    worker_of,
)
from repro.gateway.worker import serve_shards, shard_snapshot_path
from repro.service.snapshot import load_snapshot

REPO_ROOT = Path(__file__).parent.parent


def small_config(**kwargs):
    defaults = dict(n_workers=2, n_shards=4, policy="fifo", seed=0)
    defaults.update(kwargs)
    n_tenants = defaults.pop("n_tenants", 8)
    return GatewayConfig.uniform(n_tenants, **defaults)


# ---------------------------------------------------------------------------
# routing + config
# ---------------------------------------------------------------------------
class TestRouting:
    def test_stable_hash_is_process_independent(self):
        # frozen values: a routing change is a breaking protocol change
        assert stable_hash("t0") == 0x512F26ADA3C3D634
        assert shard_of("t0", 8) == 0x512F26ADA3C3D634 % 8

    def test_worker_round_robin(self):
        assert [worker_of(s, 3) for s in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_of("t", 0)
        with pytest.raises(ValueError):
            worker_of(1, 0)


class TestGatewayConfig:
    def test_routes_cover_all_tenants_and_orgs_are_contiguous(self):
        config = small_config(n_tenants=32, n_shards=8)
        assert len(config.routes) == 32
        for shard, tenants in config.shard_map.items():
            orgs = [config.routes[t.name][1] for t in tenants]
            assert orgs == list(range(len(tenants)))

    def test_org_ids_follow_declaration_order(self):
        config = small_config(n_tenants=32, n_shards=4)
        for shard, tenants in config.shard_map.items():
            decl = [config.tenants.index(t) for t in tenants]
            assert decl == sorted(decl)

    def test_worker_shards_partition_the_shards(self):
        config = small_config(n_tenants=64, n_workers=3, n_shards=8)
        seen = []
        for w in range(3):
            seen.extend(config.worker_shards(w))
        assert sorted(seen) == list(config.shard_ids())

    def test_content_hash_changes_with_shape(self):
        a = small_config()
        assert a.content_hash() == small_config().content_hash()
        assert a.content_hash() != small_config(n_shards=8).content_hash()
        assert (
            a.content_hash()
            != small_config(policy="directcontr").content_hash()
        )

    def test_shard_seed_offsets_base_seed(self):
        config = small_config(seed=10)
        assert config.shard_seed(3) == 13

    def test_validation(self):
        with pytest.raises(ValueError, match="duplicate"):
            GatewayConfig(
                tenants=(TenantSpec("a"), TenantSpec("a")), n_shards=2
            )
        with pytest.raises(ValueError):
            GatewayConfig(tenants=())
        with pytest.raises(ValueError):
            TenantSpec("a", rate=0.0)
        with pytest.raises(ValueError):
            TenantSpec("")


# ---------------------------------------------------------------------------
# admission
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_token_bucket_refills_on_virtual_clock(self):
        b = TokenBucket(rate=2.0, burst=4.0)
        assert all(b.take(0) for _ in range(4))
        assert not b.take(0)
        assert b.take(1)  # +2 tokens at t=1
        assert b.take(1)
        assert not b.take(1)

    def test_rate_limit_and_refill(self):
        config = GatewayConfig(
            tenants=(TenantSpec("a", rate=1.0, burst=2),), n_shards=1
        )
        adm = AdmissionController(config)
        adm.admit_submit("a", 1)
        adm.admit_submit("a", 1)
        with pytest.raises(AdmissionError) as exc:
            adm.admit_submit("a", 1)
        assert exc.value.code == "rate_limited"
        adm.admit_submit("a", 1, now=5)  # refilled

    def test_credits_are_charged_by_size_and_refundable(self):
        config = GatewayConfig(
            tenants=(TenantSpec("a", credits=5),), n_shards=1
        )
        adm = AdmissionController(config)
        adm.admit_submit("a", 4)
        with pytest.raises(AdmissionError) as exc:
            adm.admit_submit("a", 2)
        assert exc.value.code == "insufficient_credits"
        assert adm.add_credits("a", 10) == 11.0
        adm.admit_submit("a", 2)

    def test_rejection_leaves_tokens_and_credits_untouched(self):
        config = GatewayConfig(
            tenants=(TenantSpec("a", rate=1.0, burst=1, credits=1),),
            n_shards=1,
        )
        adm = AdmissionController(config)
        with pytest.raises(AdmissionError):
            adm.admit_submit("a", 3)  # credits refuse; token not charged
        adm.admit_submit("a", 1)  # the banked token is still there

    def test_unknown_tenant_and_bad_size(self):
        adm = AdmissionController(small_config())
        with pytest.raises(AdmissionError) as exc:
            adm.admit_submit("nobody", 1)
        assert exc.value.code == "unknown_tenant"
        with pytest.raises(AdmissionError) as exc:
            adm.admit_submit("t0", 0)
        assert exc.value.code == "bad_request"

    def test_status_counts_by_code(self):
        config = GatewayConfig(
            tenants=(TenantSpec("a", rate=1.0, burst=1),), n_shards=1
        )
        adm = AdmissionController(config)
        adm.admit_submit("a", 1)
        for _ in range(3):
            with pytest.raises(AdmissionError):
                adm.admit_submit("a", 1)
        row = adm.status()["a"]
        assert row["accepted"] == 1
        assert row["rejected"] == 3
        assert row["rejected_by_code"] == {"rate_limited": 3}


# ---------------------------------------------------------------------------
# worker loop (in-process)
# ---------------------------------------------------------------------------
def run_worker(manifest, cmds):
    lines = iter([json.dumps(c) for c in cmds])
    out = io.StringIO()
    shards = serve_shards(manifest, lines, out)
    responses = [json.loads(l) for l in out.getvalue().splitlines()]
    return responses[0], responses[1:], shards


MANIFEST = {
    "worker": 0,
    "shards": {
        "0": {"machine_counts": [1, 1], "policy": "fifo", "seed": 0},
        "2": {"machine_counts": [2], "policy": "fifo", "seed": 2},
    },
    "restore": {},
    "snapshot_dir": None,
    "linger_ms": None,
}


class TestWorkerLoop:
    def test_ready_line_and_shard_dispatch(self):
        hello, resps, _ = run_worker(
            MANIFEST,
            [
                {"id": 1, "shard": 0, "op": "submit", "org": 0, "size": 2},
                {"id": 2, "shard": 2, "op": "submit", "org": 0, "size": 1},
                {"id": 3, "shard": 0, "op": "drain"},
            ],
        )
        assert hello == {
            "ok": True,
            "worker": 0,
            "shards": [0, 2],
            "restored": [],
        }
        assert [r["shard"] for r in resps] == [0, 2, 0]
        assert all(r["ok"] for r in resps)
        assert [r["id"] for r in resps] == [1, 2, 3]

    def test_errors_are_in_band(self):
        _, resps, _ = run_worker(
            MANIFEST,
            [
                {"id": 1, "shard": 7, "op": "submit", "org": 0, "size": 1},
                {"id": 2, "op": "nonsense"},
                {"id": 3, "shard": 0, "op": "submit", "org": 99, "size": 1},
                {"id": 4, "shard": 0, "op": "status"},
            ],
        )
        assert [r["ok"] for r in resps] == [False, False, False, True]
        assert "shard 7" in resps[0]["error"]

    def test_shard_stop_does_not_kill_the_worker(self):
        _, resps, _ = run_worker(
            MANIFEST,
            [
                {"id": 1, "shard": 0, "op": "stop"},
                {"id": 2, "shard": 2, "op": "status"},
            ],
        )
        assert len(resps) == 2 and resps[1]["ok"]

    def test_worker_status_and_snapshot_shards(self, tmp_path):
        _, resps, _ = run_worker(
            {**MANIFEST, "snapshot_dir": str(tmp_path)},
            [
                {"id": 1, "shard": 0, "op": "submit", "org": 0, "size": 3},
                {"id": 2, "op": "worker_status"},
                {"id": 3, "op": "snapshot_shards"},
            ],
        )
        assert set(resps[1]["shards"]) == {"0", "2"}
        snaps = resps[2]["snapshots"]
        assert set(snaps) == {"0", "2"}
        for sid in ("0", "2"):
            payload = load_snapshot(snaps[sid]["path"])
            assert payload["content_hash"] == snaps[sid]["content_hash"]

    def test_restore_resumes_bit_identically(self, tmp_path):
        cmds = [
            {"id": 1, "shard": 0, "op": "submit", "org": 0, "size": 3},
            {"id": 2, "shard": 0, "op": "submit", "org": 1, "size": 1},
            {"id": 3, "shard": 0, "op": "advance", "t": 1},
        ]
        _, resps, _ = run_worker(
            {**MANIFEST, "snapshot_dir": str(tmp_path)},
            cmds + [{"id": 4, "op": "snapshot_shards"}],
        )
        tail = [
            {"id": 5, "shard": 0, "op": "submit", "org": 0, "size": 2},
            {"id": 6, "shard": 0, "op": "drain"},
            {"id": 7, "shard": 0, "op": "snapshot"},
        ]
        # straight-through run
        _, straight, _ = run_worker(MANIFEST, cmds + tail)
        # restored run
        hello, restored, _ = run_worker(
            {
                **MANIFEST,
                "restore": {
                    "0": str(shard_snapshot_path(tmp_path, 0)),
                },
            },
            tail,
        )
        assert hello["restored"] == [0]
        assert (
            straight[-1]["snapshot"]["schedule_digest"]
            == restored[-1]["snapshot"]["schedule_digest"]
        )


# ---------------------------------------------------------------------------
# the subprocess fleet
# ---------------------------------------------------------------------------
class TestGatewayFleet:
    def test_loadgen_verifies_against_batch_per_shard(self):
        config = small_config(n_tenants=16, n_shards=4, policy="fifo")
        with Gateway(config) as gw:
            report = run_loadgen(
                gw, LoadSpec(n_events=1500, n_releases=40, seed=1)
            )
        assert report.verified is True
        assert report.n_accepted == 1500
        assert gw.pool.n_live_workers == 0  # closed

    def test_multiple_policies_verify(self):
        for policy in ("directcontr", "fairshare"):
            config = small_config(
                n_tenants=8, n_shards=4, policy=policy, seed=2
            )
            with Gateway(config) as gw:
                report = run_loadgen(
                    gw, LoadSpec(n_events=400, n_releases=20, seed=3)
                )
            assert report.verified is True, policy

    def test_admission_rejections_never_reach_a_shard(self):
        config = small_config(
            n_tenants=8, n_shards=4, credits=20, policy="fifo"
        )
        with Gateway(config) as gw:
            report = run_loadgen(
                gw, LoadSpec(n_events=600, n_releases=30, max_size=4, seed=4)
            )
            assert report.n_rejected > 0
            assert report.rejected_by_code.keys() == {
                "insufficient_credits"
            }
            # the shards saw exactly the admitted jobs -- and the batch
            # check (which replays only admitted events) still passes
            assert report.verified is True
            assert not gw.forward_errors

    def test_unknown_tenant_is_in_band(self):
        config = small_config(n_tenants=4)
        with Gateway(config) as gw:
            resp = gw.submit("nobody", 1)
            assert resp == {
                "ok": False,
                "tenant": "nobody",
                "error": "unknown tenant 'nobody'",
                "code": "unknown_tenant",
            }
            gw.drain()

    def test_status_aggregates_fleet_and_tenants(self):
        config = small_config(n_tenants=8, n_shards=4, credits=50)
        with Gateway(config) as gw:
            for i in range(8):
                gw.submit(f"t{i}", 2)
            gw.advance(1)
            status = gw.status()
        assert status["jobs_submitted"] == 8
        assert status["tenants"] == 8
        assert status["workers"] == 2
        assert set(status["per_tenant"]) == {f"t{i}" for i in range(8)}
        row = status["per_tenant"]["t0"]
        assert row["accepted"] == 1
        assert row["credits_remaining"] == 48.0
        assert row["jobs_submitted"] == 1
        assert (
            sum(s["ingest"]["jobs_flushed"] for s in
                status["per_shard"].values())
            == 8
        )

    def test_latency_percentiles_present(self):
        config = small_config(n_tenants=4)
        with Gateway(config) as gw:
            report = run_loadgen(
                gw, LoadSpec(n_events=200, n_releases=10, seed=5)
            )
        assert report.p50_ms > 0
        assert report.p99_ms >= report.p50_ms


class TestCrashRecovery:
    def kill_restore_run(self, policy, tmp_path, **cfg):
        config = small_config(policy=policy, **cfg)
        spec = LoadSpec(n_events=800, n_releases=40, seed=6)
        with Gateway(config, snapshot_dir=tmp_path) as gw:
            report = run_loadgen(
                gw,
                spec,
                snapshot_at_release=12,
                kill_worker_at_release=25,
            )
            assert gw.pool.restores == 1
        return report

    def test_kill_and_restore_is_bit_identical_single_engine(self, tmp_path):
        report = self.kill_restore_run("fairshare", tmp_path, n_tenants=12)
        assert report.verified is True

    def test_kill_and_restore_is_bit_identical_kernel_ref(self, tmp_path):
        # the kernel-backed REF engine must survive the same crash story
        report = self.kill_restore_run(
            "ref", tmp_path, n_tenants=8, horizon=300
        )
        assert report.verified is True

    def test_kill_without_checkpoint_replays_full_wal(self, tmp_path):
        config = small_config(n_tenants=8, policy="fifo")
        with Gateway(config, snapshot_dir=tmp_path) as gw:
            report = run_loadgen(
                gw,
                LoadSpec(n_events=400, n_releases=20, seed=7),
                kill_worker_at_release=10,  # no snapshot_at: WAL-only
            )
        assert report.verified is True

    def test_dead_worker_refuses_commands_until_restored(self, tmp_path):
        config = small_config(n_tenants=8, policy="fifo")
        with Gateway(config, snapshot_dir=tmp_path) as gw:
            gw.submit("t0", 1)
            gw.pool.barrier()
            shard0 = config.routes["t0"][0]
            from repro.gateway.routing import worker_of as wof

            victim = wof(shard0, config.n_workers)
            gw.kill_worker(victim)
            with pytest.raises(WorkerDied):
                gw.pool.call(shard0, {"op": "status"})
            gw.restore_worker(victim)
            resp = gw.pool.call(shard0, {"op": "status"}, log=False)
            assert resp["ok"] and resp["jobs_submitted"] == 1

    def test_snapshot_under_load_does_not_change_the_schedule(self, tmp_path):
        spec = LoadSpec(n_events=600, n_releases=30, seed=8)
        config = small_config(n_tenants=8, policy="directcontr")
        with Gateway(config) as gw:
            base = run_loadgen(gw, spec)
        with Gateway(config, snapshot_dir=tmp_path) as gw:
            snapped = run_loadgen(gw, spec, snapshot_at_release=15)
        assert base.verified and snapped.verified
        assert base.shard_digests == snapped.shard_digests
        assert snapped.snapshot_under_load_s is not None


# ---------------------------------------------------------------------------
# stream determinism + the verification harness itself
# ---------------------------------------------------------------------------
class TestLoadgenHarness:
    def test_stream_is_deterministic_and_canonically_ordered(self):
        config = small_config(n_tenants=16)
        spec = LoadSpec(n_events=500, n_releases=20, seed=9)
        a = generate_stream(config, spec)
        assert a == generate_stream(config, spec)
        decl = {t.name: i for i, t in enumerate(config.tenants)}
        keys = [(r, decl[t]) for r, t, _ in a]
        assert keys == sorted(keys)

    def test_verify_detects_a_corrupted_stream(self):
        config = small_config(n_tenants=8, policy="fifo")
        spec = LoadSpec(n_events=300, n_releases=15, seed=10)
        stream = generate_stream(config, spec)
        with Gateway(config) as gw:
            report = run_loadgen(gw, stream=stream)
        assert report.verified is True
        tampered = list(stream)
        r, t, size = tampered[50]
        tampered[50] = (r, t, size + 1)
        expected = verify_against_batch(config, tampered)
        assert expected != report.shard_digests  # the digest is sensitive


# ---------------------------------------------------------------------------
# graceful shutdown (satellite b)
# ---------------------------------------------------------------------------
def spawn_cli(args, **popen_kwargs):
    return subprocess.Popen(
        [sys.executable, "-m", "repro"] + args,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(REPO_ROOT),
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        **popen_kwargs,
    )


def wait_for_line(stream, timeout=30.0):
    import select as select_mod

    deadline = time.monotonic() + timeout
    fd = stream.fileno()
    buf = bytearray()
    while time.monotonic() < deadline:
        ready, _, _ = select_mod.select([fd], [], [], 0.2)
        if not ready:
            continue
        b = os.read(fd, 1)
        if not b:
            break
        if b == b"\n":
            return buf.decode()
        buf.extend(b)
    raise AssertionError(f"no line within {timeout}s (got {buf!r})")


class TestGracefulShutdown:
    def test_serve_sigterm_writes_snapshot(self, tmp_path):
        snap = tmp_path / "final.json"
        proc = spawn_cli(
            [
                "serve", "--orgs", "2,1", "--policy", "fifo",
                "--snapshot-to", str(snap),
            ],
            bufsize=1,
        )
        try:
            proc.stdin.write(
                '{"id": 1, "op": "submit", "org": 0, "size": 2}\n'
            )
            proc.stdin.flush()
            line = proc.stdout.readline()
            assert json.loads(line)["ok"]
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "graceful shutdown" in err
        assert "signal 15" in err
        payload = load_snapshot(snap)
        assert payload["journal"], "snapshot should hold the submitted job"

    def test_worker_sigterm_checkpoints_all_shards(self, tmp_path):
        manifest = {
            "worker": 0,
            "shards": {
                "0": {"machine_counts": [1], "policy": "fifo", "seed": 0},
                "1": {"machine_counts": [1], "policy": "fifo", "seed": 1},
            },
            "restore": {},
            "snapshot_dir": str(tmp_path),
            "linger_ms": None,
        }
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.gateway.worker import worker_main; "
                "raise SystemExit(worker_main())",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            cwd=str(REPO_ROOT),
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        try:
            proc.stdin.write((json.dumps(manifest) + "\n").encode())
            proc.stdin.flush()
            assert json.loads(wait_for_line(proc.stdout))["ok"]
            proc.stdin.write(
                b'{"id": 1, "shard": 0, "op": "submit", "org": 0, "size": 2}\n'
            )
            proc.stdin.flush()
            assert json.loads(wait_for_line(proc.stdout))["ok"]
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 0
        for sid in (0, 1):
            payload = load_snapshot(shard_snapshot_path(tmp_path, sid))
            assert payload["format"] == "repro.service.snapshot"
        # shard 0 recorded the submit it had accepted before the signal
        assert load_snapshot(shard_snapshot_path(tmp_path, 0))["journal"]


# ---------------------------------------------------------------------------
# serve_loop linger starvation (satellite a)
# ---------------------------------------------------------------------------
class TestLingerStarvation:
    def test_idle_stdin_still_flushes_after_linger(self):
        # regression: with --batch-max 0 (unbounded buffer) and a linger,
        # a buffered job on an *idle* stdin used to sit unflushed forever
        # because the linger was only checked after each command.  The
        # bounded blocking read must flush it without further input.
        proc = spawn_cli(
            [
                "serve", "--orgs", "1,1", "--policy", "fifo",
                "--batch-max", "0", "--batch-linger-ms", "50",
            ],
            bufsize=1,
        )
        try:
            proc.stdin.write(
                '{"id": 1, "op": "submit", "org": 0, "size": 1}\n'
            )
            proc.stdin.flush()
            assert json.loads(proc.stdout.readline())["ok"]
            # stay idle well past the linger; send nothing
            time.sleep(0.6)
            proc.stdin.write('{"id": 2, "op": "status"}\n')
            proc.stdin.flush()
            status = json.loads(proc.stdout.readline())
            proc.stdin.close()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            proc.stdout.close()
            proc.stderr.close()
        # the flush happened during the idle window, before the status
        # command arrived: nothing was buffered when status ran
        assert status["ingest"] == {
            "buffered": 0,
            "flushes": 1,
            "jobs_flushed": 1,
        }


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestGatewayCli:
    def test_loadgen_subcommand(self, capsys):
        from repro.cli import main

        code = main([
            "loadgen", "--events", "300", "--tenants", "64",
            "--releases", "15", "--workers", "2", "--shards", "8",
            "--policy", "fifo", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK (bit-identical per shard)" in out
        assert "64 tenants" in out

    def test_loadgen_kill_restore_subcommand(self, capsys):
        from repro.cli import main

        code = main([
            "loadgen", "--events", "300", "--tenants", "16",
            "--releases", "15", "--policy", "fifo",
            "--snapshot-at", "5", "--kill-at", "10",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "snapshot cost" in out

    def test_gateway_daemon_round_trip(self):
        proc = spawn_cli(
            [
                "gateway", "--workers", "2", "--shards", "4",
                "--tenants", "8", "--policy", "fifo",
            ],
            bufsize=1,
        )
        cmds = [
            {"id": 1, "op": "submit", "tenant": "t3", "size": 2},
            {"id": 2, "op": "submit", "tenant": "nobody", "size": 1},
            {"id": 3, "op": "advance", "t": 2},
            {"id": 4, "op": "status"},
            {"id": 5, "op": "digests"},
            {"id": 6, "op": "stop"},
        ]
        try:
            for cmd in cmds:
                proc.stdin.write(json.dumps(cmd) + "\n")
            proc.stdin.flush()
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        resps = [json.loads(l) for l in out.splitlines()]
        by_id = {r["id"]: r for r in resps}
        assert by_id[1]["ok"] and by_id[1]["tenant"] == "t3"
        assert not by_id[2]["ok"]
        assert by_id[2]["code"] == "unknown_tenant"
        assert by_id[4]["jobs_submitted"] == 1
        assert by_id[5]["ok"] and by_id[5]["digests"]
        assert by_id[6] == {"ok": True, "stopped": True, "id": 6}
