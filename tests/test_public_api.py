"""Public API surface and documentation-coverage checks.

Deliverable guards: every name re-exported at the top level exists, is
importable, and carries a docstring; every module in the package has a
module docstring; the README's advertised entry points work.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue  # executes the CLI on import
        yield importlib.import_module(info.name)


class TestApiSurface:
    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted_and_unique(self):
        names = list(repro.__all__)
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "name",
        [
            "Job",
            "Organization",
            "Workload",
            "RefScheduler",
            "RandScheduler",
            "DirectContributionScheduler",
            "FairShareScheduler",
            "StrategyProofUtility",
            "SchedulingGame",
            "shapley_exact",
            "avg_delay",
            "make_trace",
            "load_swf",
        ],
    )
    def test_headline_names_present(self, name):
        assert name in repro.__all__


class TestDocumentation:
    def test_every_module_has_docstring(self):
        for mod in _walk_modules():
            assert mod.__doc__ and mod.__doc__.strip(), mod.__name__

    def test_every_public_export_has_docstring(self):
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__ and obj.__doc__.strip(), name

    def test_public_methods_of_core_classes_documented(self):
        for cls in (
            repro.Workload,
            repro.ClusterEngine,
            repro.Schedule,
            repro.RefScheduler,
            repro.RandScheduler,
        ):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member):
                    assert member.__doc__, f"{cls.__name__}.{name}"


class TestSubpackages:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.utility",
            "repro.shapley",
            "repro.algorithms",
            "repro.workloads",
            "repro.analysis",
            "repro.sim",
            "repro.experiments",
            "repro.extensions",
            "repro.viz",
            "repro.cli",
        ],
    )
    def test_importable(self, module):
        importlib.import_module(module)

    def test_subpackage_alls_resolve(self):
        for mod in _walk_modules():
            for name in getattr(mod, "__all__", ()):
                assert hasattr(mod, name), f"{mod.__name__}.{name}"
