"""Unit tests for repro.core.coalition (bitmask sets, Shapley weights)."""

from fractions import Fraction
from math import comb, factorial

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.coalition import (
    Coalition,
    iter_members,
    iter_proper_subsets,
    iter_subsets,
    popcount,
    scaled_shapley_weights,
    shapley_weight,
    subsets_by_size,
)


class TestCoalition:
    def test_from_iterable_and_mask_agree(self):
        assert Coalition([0, 2, 5]) == Coalition(0b100101)

    def test_membership(self):
        c = Coalition([1, 3])
        assert 1 in c and 3 in c
        assert 0 not in c and 2 not in c

    def test_len_iter(self):
        c = Coalition([4, 1, 2])
        assert len(c) == 3
        assert sorted(c) == [1, 2, 4]

    def test_grand(self):
        assert sorted(Coalition.grand(4)) == [0, 1, 2, 3]
        assert len(Coalition.grand(0)) == 0

    def test_add_remove(self):
        c = Coalition([0])
        assert sorted(c.add(2)) == [0, 2]
        assert sorted(c.add(2).remove(0)) == [2]
        with pytest.raises(KeyError):
            c.remove(5)

    def test_union_intersection_subset(self):
        a, b = Coalition([0, 1]), Coalition([1, 2])
        assert sorted(a.union(b)) == [0, 1, 2]
        assert sorted(a.intersection(b)) == [1]
        assert Coalition([1]).issubset(a)
        assert not a.issubset(b)

    def test_equality_with_set(self):
        assert Coalition([0, 2]) == {0, 2}

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Coalition([0]).mask = 3

    def test_subsets_iterator(self):
        subs = {tuple(sorted(s)) for s in Coalition([0, 2]).subsets()}
        assert subs == {(), (0,), (2,), (0, 2)}
        proper = {
            tuple(sorted(s)) for s in Coalition([0, 2]).subsets(proper=True)
        }
        assert proper == {(), (0,), (2,)}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Coalition(-1)
        with pytest.raises(ValueError):
            Coalition([-2])


class TestBitmaskHelpers:
    @given(st.integers(0, 2**12 - 1))
    def test_iter_subsets_counts(self, mask):
        subs = list(iter_subsets(mask))
        assert len(subs) == 2 ** popcount(mask)
        assert len(set(subs)) == len(subs)
        assert all(s & ~mask == 0 for s in subs)

    @given(st.integers(0, 2**10 - 1))
    def test_proper_subsets_exclude_self(self, mask):
        subs = list(iter_proper_subsets(mask))
        assert mask not in subs or mask == 0 and subs == []
        assert len(subs) == 2 ** popcount(mask) - 1

    @given(st.integers(0, 2**16 - 1))
    def test_iter_members_matches_bits(self, mask):
        assert sum(1 << u for u in iter_members(mask)) == mask

    def test_subsets_by_size_groups(self):
        groups = subsets_by_size(0b1011)
        assert [len(g) for g in groups] == [comb(3, s) for s in range(4)]
        for size, group in enumerate(groups):
            assert all(popcount(m) == size for m in group)


class TestShapleyWeights:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_weights_sum_to_one(self, k):
        """sum over subsets containing a fixed player of w(|S|) == 1."""
        total = sum(
            comb(k - 1, s - 1) * shapley_weight(s, k) for s in range(1, k + 1)
        )
        assert total == 1

    @pytest.mark.parametrize("k", [1, 2, 4, 6])
    def test_scaled_matches_fraction(self, k):
        scaled = scaled_shapley_weights(k)
        for s in range(1, k + 1):
            assert Fraction(scaled[s], factorial(k)) == shapley_weight(s, k)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            shapley_weight(0, 3)
        with pytest.raises(ValueError):
            shapley_weight(4, 3)
        with pytest.raises(ValueError):
            scaled_shapley_weights(0)
