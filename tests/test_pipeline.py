"""Tests for the ScenarioSpec pipeline: registry, hashing, streaming
aggregation, parallel/serial bit-identity, cache resume, and the new
scenario families (SWF end-to-end, federated offload, churn sweep)."""

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.pipeline import (
    MAX_SHARD,
    PipelineInstanceResult,
    StreamingStats,
    cache_path_for,
    run_instance_spec,
    run_pipeline,
    run_shard,
    shard_instances,
)
from repro.experiments.store import ResultStore
from repro.experiments.registry import (
    FAMILIES,
    PORTFOLIOS,
    SCENARIOS,
    get_family,
    get_portfolio,
    get_scenario,
    scenario_spec,
)
from repro.experiments.spec import ScenarioSpec, derive_rng
from repro.workloads.federated import FederatedSpec, federated_records
from repro.workloads.swf import load_swf, parse_swf, write_swf

TINY_SWF = Path(__file__).parent / "data" / "tiny.swf"


def tiny_spec(**overrides) -> ScenarioSpec:
    base = dict(
        family="synthetic", traces=("LPC-EGEE",), n_orgs=3, duration=600,
        n_repeats=2, scale=0.08, seed=1,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            tiny_spec(machine_dist="pareto")
        with pytest.raises(ValueError):
            tiny_spec(n_repeats=0)
        with pytest.raises(ValueError):
            tiny_spec(traces=())
        with pytest.raises(ValueError):
            tiny_spec(metrics=())

    def test_content_hash_stable_and_sensitive(self):
        a, b = tiny_spec(), tiny_spec()
        assert a.content_hash() == b.content_hash()
        for change in (
            {"seed": 2},
            {"duration": 601},
            {"portfolio": "fast"},
            {"metrics": ("avg_delay", "unfairness")},
            {"org_counts": (2, 3)},
        ):
            assert tiny_spec(**change).content_hash() != a.content_hash()

    def test_instance_enumeration(self):
        spec = tiny_spec(traces=("A", "B"), n_repeats=3)
        insts = spec.instances()
        assert len(insts) == 6
        assert [i.index for i in insts] == list(range(6))
        assert len({i.key for i in insts}) == 6

    def test_sweep_variants(self):
        spec = tiny_spec(org_counts=(2, 4), zipf_exponents=(1.0, 2.0))
        insts = spec.instances()
        assert len(insts) == 2 * 2 * 2
        variants = {i.variant for i in insts}
        assert (("n_orgs", 2), ("zipf_exponent", 1.0)) in variants
        assert insts[0].param("n_orgs", None) == 2

    def test_derive_rng_cross_process_stable(self):
        # crc32-derived seeds must not depend on interpreter hash state
        assert derive_rng("x/0/1").integers(0, 1 << 30) == derive_rng(
            "x/0/1"
        ).integers(0, 1 << 30)


class TestRegistry:
    def test_builtin_registrations(self):
        assert {"synthetic", "swf", "federated", "churn"} <= set(FAMILIES)
        assert {"paper", "fast", "contribution"} <= set(PORTFOLIOS)
        for name in ("table1", "table2", "figure10", "churn", "federated", "swf"):
            assert get_scenario(name).spec.family in FAMILIES

    def test_unknown_names_raise_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            get_family("nope")
        with pytest.raises(KeyError, match="available"):
            get_portfolio("nope")
        with pytest.raises(KeyError, match="available"):
            get_scenario("nope")

    def test_scenario_spec_overrides(self):
        spec = scenario_spec("table1", duration=123, seed=9, scale=0.5)
        assert (spec.duration, spec.seed, spec.scale) == (123, 9, 0.5)
        # None overrides are ignored (CLI flags left at default)
        assert scenario_spec("table1", duration=None) == get_scenario("table1").spec

    def test_paper_portfolio_matches_table_rows(self):
        names = [a.name for a in get_portfolio("paper")(100, 0)]
        assert names == [
            "RoundRobin", "Rand(N=15)", "DirectContr",
            "FairShare", "UtFairShare", "CurrFairShare",
        ]


class TestStreamingStats:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(3.0, 2.0, size=257)
        s = StreamingStats()
        for x in xs:
            s.push(float(x))
        assert s.n == len(xs)
        assert s.mean == pytest.approx(float(xs.mean()), rel=1e-12)
        assert s.std == pytest.approx(float(xs.std()), rel=1e-12)

    def test_empty(self):
        assert StreamingStats().as_tuple() == (0, 0.0, 0.0)


class TestPipelineExecution:
    def test_serial_parallel_bit_identical(self):
        spec = tiny_spec()
        serial = run_pipeline(spec, workers=1, keep_instances=True)
        parallel = run_pipeline(spec, workers=2, keep_instances=True)
        assert serial.instances == parallel.instances
        assert serial.aggregates == parallel.aggregates

    def test_aggregates_match_instances(self):
        spec = tiny_spec(n_repeats=3)
        result = run_pipeline(spec, keep_instances=True)
        for alg in result.algorithms():
            vals = [r.metrics["avg_delay"][alg] for r in result.instances]
            mean, std = result.mean_std("LPC-EGEE", alg)
            assert mean == pytest.approx(float(np.mean(vals)), rel=1e-12)
            assert std == pytest.approx(float(np.std(vals)), rel=1e-12)

    def test_memory_default_drops_instances(self):
        result = run_pipeline(tiny_spec())
        assert result.instances is None

    def test_matches_legacy_serial_loop(self):
        """The pipeline must be bit-compatible with the pre-pipeline
        hand-rolled experiment loop (same crc32 seed scheme)."""
        import zlib

        from repro.experiments.harness import (
            ExperimentConfig,
            default_algorithms,
            run_instance,
            sample_instance,
        )

        spec = tiny_spec()
        config = ExperimentConfig(
            traces=spec.traces, n_orgs=spec.n_orgs, duration=spec.duration,
            n_repeats=spec.n_repeats, scale=spec.scale, seed=spec.seed,
        )
        expected = []
        for trace in spec.traces:
            for rep in range(spec.n_repeats):
                rng = np.random.default_rng(
                    zlib.crc32(f"{trace}/{rep}/{spec.seed}".encode())
                )
                wl = sample_instance(trace, config, rng)
                algs = default_algorithms(
                    spec.duration, int(rng.integers(0, 2**31 - 1))
                )
                expected.append(run_instance(wl, spec.duration, algs))
        result = run_pipeline(spec, keep_instances=True)
        assert [r.metrics["avg_delay"] for r in result.instances] == expected


class TestMakespanMetric:
    """The spec-nameable ``makespan`` scoring function (METRICS registry)."""

    def test_registered_and_spec_nameable(self):
        from repro.sim.runner import METRICS

        assert "makespan" in METRICS
        spec = tiny_spec(metrics=("avg_delay", "makespan"), n_repeats=1)
        result = run_pipeline(spec, keep_instances=True)
        (inst,) = result.instances
        assert set(inst.metrics) == {"avg_delay", "makespan"}
        group = result.aggregates[("LPC-EGEE", ())]
        assert set(group) == {"avg_delay", "makespan"}

    def test_value_matches_schedule_makespan(self):
        from repro.algorithms.greedy import GreedyFifoScheduler
        from repro.algorithms.ref import RefScheduler
        from repro.experiments.registry import get_family
        from repro.sim.runner import METRICS

        spec = tiny_spec(metrics=("makespan",), n_repeats=1, duration=1_200,
                         scale=0.15)
        inst = spec.instances()[0]
        workload, _ = get_family(spec.family)(spec, inst)
        assert workload.jobs, "window must contain jobs for this check"
        result = GreedyFifoScheduler(horizon=spec.duration).run(workload)
        reference = RefScheduler(horizon=spec.duration).run(workload)
        got = METRICS["makespan"](result, reference, spec.duration)
        want = float(
            max(
                e.end
                for e in result.schedule
                if e.start < spec.duration
            )
        )
        assert got == want
        # reference-independence: any reference gives the same score
        assert got == METRICS["makespan"](result, result, spec.duration)

    def test_empty_schedule_scores_zero(self):
        from repro.algorithms.base import SchedulerResult
        from repro.core.schedule import Schedule
        from repro.core.workload import Workload
        from repro.core.organization import Organization
        from repro.sim.metrics import makespan

        wl = Workload((Organization(0, 1),), ())
        empty = SchedulerResult("x", wl, (0,), Schedule(()))
        assert makespan(empty, empty, 100) == 0.0


class TestCacheResume:
    def test_full_resume_recomputes_zero(self, tmp_path):
        spec = tiny_spec()
        first = run_pipeline(spec, cache_dir=tmp_path, keep_instances=True)
        assert (first.computed, first.cached) == (2, 0)
        again = run_pipeline(spec, cache_dir=tmp_path, keep_instances=True)
        assert (again.computed, again.cached) == (0, 2)
        assert again.instances == first.instances
        assert again.aggregates == first.aggregates

    def test_killed_run_resumes_from_flushed_lines(self, tmp_path):
        """Simulate a kill mid-run: keep the first flushed line plus a torn
        partial line; the resumed run must recompute only the missing
        instance and reproduce the original results exactly."""
        spec = tiny_spec()
        full = run_pipeline(spec, cache_dir=tmp_path, keep_instances=True)
        cache = cache_path_for(spec, tmp_path)
        lines = cache.read_text().splitlines()
        assert len(lines) == 2
        cache.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        resumed = run_pipeline(spec, cache_dir=tmp_path, keep_instances=True)
        assert (resumed.computed, resumed.cached) == (1, 1)
        assert resumed.instances == full.instances

    def test_no_resume_recomputes(self, tmp_path):
        spec = tiny_spec()
        run_pipeline(spec, cache_dir=tmp_path)
        fresh = run_pipeline(spec, cache_dir=tmp_path, resume=False)
        assert fresh.computed == 2

    def test_spec_edit_invalidates_cache(self, tmp_path):
        run_pipeline(tiny_spec(), cache_dir=tmp_path)
        other = run_pipeline(tiny_spec(seed=2), cache_dir=tmp_path)
        assert other.cached == 0
        assert len(list(Path(tmp_path).glob("*.jsonl"))) == 2

    def test_instance_result_json_roundtrip(self):
        spec = tiny_spec(org_counts=(2,), family="churn")
        result = run_instance_spec(spec, spec.instances()[0])
        back = PipelineInstanceResult.from_json(
            json.loads(json.dumps(result.to_json()))
        )
        assert back == result


class TestSwfFamily:
    def test_fixture_round_trips(self, tmp_path):
        trace = load_swf(TINY_SWF)
        assert len(trace) > 100 and trace.max_procs == 6
        rewritten = tmp_path / "again.swf"
        write_swf(trace, rewritten)
        again = load_swf(rewritten)
        assert again.jobs == trace.jobs and again.header == trace.header
        assert parse_swf(TINY_SWF.read_text()).jobs == trace.jobs

    def test_swf_end_to_end_serial_equals_parallel(self, tmp_path):
        """The satellite acceptance test: a real SWF file flows through
        parsing -> Workload construction -> the pipeline, and a workers>1
        run is bit-identical to serial, including after a cache resume."""
        spec = dataclasses.replace(
            scenario_spec("swf", swf_path=str(TINY_SWF)),
            traces=("tiny",), n_orgs=3, duration=400, n_repeats=2,
            portfolio="fast",
        )
        serial = run_pipeline(spec, keep_instances=True)
        parallel = run_pipeline(
            spec, workers=2, cache_dir=tmp_path, keep_instances=True
        )
        assert serial.instances == parallel.instances
        resumed = run_pipeline(
            spec, workers=2, cache_dir=tmp_path, keep_instances=True
        )
        assert resumed.computed == 0
        assert resumed.instances == serial.instances
        for inst in serial.instances:
            assert inst.n_machines == 6
            assert inst.n_jobs > 0

    def test_swf_family_requires_path(self):
        spec = scenario_spec("swf")
        with pytest.raises(ValueError, match="swf_path"):
            run_instance_spec(spec, spec.instances()[0])


class TestFederatedFamily:
    def test_records_deterministic_and_partitioned(self):
        fspec = FederatedSpec(n_orgs=3, horizon=2_000, users_per_org=4)
        a, map_a = federated_records(fspec, np.random.default_rng(5))
        b, map_b = federated_records(fspec, np.random.default_rng(5))
        assert a == b and map_a == map_b
        # users are partitioned per provider and every record is mapped
        assert set(map_a.values()) == {0, 1, 2}
        for r in a:
            assert r.user in map_a
            assert 0 <= r.submit < fspec.horizon
            assert r.cpus == 1

    def test_staggered_peaks(self):
        """Provider demand peaks must be phase-shifted: the circular mean
        submit phase of each provider differs from its neighbours'."""
        fspec = FederatedSpec(
            n_orgs=2, horizon=4_000, day_length=4_000, peak_amplitude=1.0,
            users_per_org=6,
        )
        records, user_map = federated_records(fspec, np.random.default_rng(2))
        phases = []
        for org in (0, 1):
            submits = np.array(
                [r.submit for r in records if user_map[r.user] == org]
            )
            angle = 2 * np.pi * submits / fspec.day_length
            phases.append(
                np.arctan2(np.sin(angle).mean(), np.cos(angle).mean())
            )
        gap = abs(phases[0] - phases[1]) % (2 * np.pi)
        gap = min(gap, 2 * np.pi - gap)
        assert gap > np.pi / 2  # half-day apart for k=2

    def test_federated_through_pipeline(self):
        spec = dataclasses.replace(
            scenario_spec("federated"),
            duration=600, n_repeats=2, portfolio="fast", metrics=("avg_delay",),
        )
        serial = run_pipeline(spec, keep_instances=True)
        parallel = run_pipeline(spec, workers=2, keep_instances=True)
        assert serial.instances == parallel.instances
        k = spec.n_orgs
        for inst in serial.instances:
            assert inst.n_machines == k * 5  # uniform machines_per_org=5


class TestChurnFamily:
    def test_common_random_number_windows(self):
        """The churn family's CRN design: cells of one repeat share the
        trace window, so job counts differ only through the assignment."""
        spec = tiny_spec(
            family="churn", org_counts=(2, 3), n_repeats=1, duration=500,
        )
        results = [
            run_instance_spec(spec, inst) for inst in spec.instances()
        ]
        # same window -> the union of jobs comes from the same records;
        # machine pool identical across k
        assert len({r.n_machines for r in results}) == 1

    def test_figure10_matches_legacy_scheme(self):
        """figure10 through the pipeline reproduces the documented legacy
        seed scheme (window key independent of k, assignment key
        trace/k/rep/seed)."""
        import zlib

        from repro.experiments.figures import figure10
        from repro.experiments.harness import (
            ExperimentConfig,
            assign_instance,
            default_algorithms,
            run_instance,
            sample_window,
        )

        trace, duration, seed = "LPC-EGEE", 500, 0
        xs, series = figure10(
            (2, 3), trace=trace, duration=duration, n_repeats=1,
            scale=0.08, seed=seed,
        )
        base = ExperimentConfig(
            traces=(trace,), duration=duration, n_repeats=1, scale=0.08,
            seed=seed,
        )
        window = sample_window(
            trace, base,
            np.random.default_rng(
                zlib.crc32(f"{trace}/window/0/{seed}".encode())
            ),
        )
        for xi, k in enumerate((2, 3)):
            cfg = ExperimentConfig(
                traces=(trace,), n_orgs=k, duration=duration, n_repeats=1,
                scale=0.08, seed=seed,
            )
            records, gen_spec, t_start = window
            rng = np.random.default_rng(
                zlib.crc32(f"{trace}/{k}/0/{seed}".encode())
            )
            wl = assign_instance(records, gen_spec, t_start, cfg, rng)
            algs = default_algorithms(
                duration, int(rng.integers(0, 2**31 - 1))
            )
            expected = run_instance(wl, duration, algs)
            for alg, val in expected.items():
                assert series[alg][xi] == val


class TestBatchedPipeline:
    """Serial == sharded-batched == parallel bit-identity for every
    registered scenario family, with k >= 5 so the cross-instance fused
    kernel actually engages (and mixed-k sweeps exercise the per-instance
    fallback next to batched siblings)."""

    def _assert_three_way(self, spec):
        serial = run_pipeline(spec, batch=False, keep_instances=True)
        batched = run_pipeline(spec, batch=True, keep_instances=True)
        parallel = run_pipeline(
            spec, batch=True, workers=2, keep_instances=True
        )
        assert serial.instances == batched.instances
        assert serial.instances == parallel.instances
        assert serial.aggregates == batched.aggregates == parallel.aggregates
        return serial

    def test_synthetic_family(self):
        spec = tiny_spec(n_orgs=5)
        # the batched path must actually engage for this spec
        from repro.algorithms.multiref import batchable

        build = get_family(spec.family)
        wl, _ = build(spec, spec.instances()[0])
        assert batchable(wl, spec.duration)
        self._assert_three_way(spec)

    def test_swf_family(self):
        spec = dataclasses.replace(
            scenario_spec("swf", swf_path=str(TINY_SWF)),
            traces=("tiny",), n_orgs=5, duration=400, n_repeats=2,
            portfolio="fast",
        )
        self._assert_three_way(spec)

    def test_federated_family(self):
        spec = dataclasses.replace(
            scenario_spec("federated"),
            n_orgs=5, duration=600, n_repeats=2, portfolio="fast",
            metrics=("avg_delay",),
        )
        self._assert_three_way(spec)

    def test_churn_family_mixed_k(self):
        # k=3 rides the per-instance fallback, k=5 the batched kernel --
        # in the same shard
        spec = tiny_spec(
            family="churn", org_counts=(3, 5), n_repeats=1, duration=500,
            portfolio="fast",
        )
        self._assert_three_way(spec)

    def test_shard_sizing(self):
        todo = list(range(100))
        serial_shards = shard_instances(todo, 1)
        assert [len(s) for s in serial_shards[:-1]] == [MAX_SHARD] * 3
        assert [x for s in serial_shards for x in s] == todo
        par_shards = shard_instances(todo, 4)
        assert len(par_shards) >= 8  # ~2 shards per worker
        assert [x for s in par_shards for x in s] == todo
        assert shard_instances([], 4) == []
        assert [len(s) for s in shard_instances(todo[:3], 4)] == [1, 1, 1]


class TestResultStore:
    def test_cross_spec_dedupe_bit_identical(self, tmp_path):
        """Rows stored by one spec replay bit-identically into a
        different spec that shares (workload, policy, seed) triples."""
        base = dict(
            family="synthetic", traces=("LPC-EGEE",), n_orgs=5,
            duration=600, n_repeats=2, scale=0.08, seed=3,
        )
        warm_spec = ScenarioSpec(**base, portfolio="fast")
        sub_spec = ScenarioSpec(**base, policies=("fairshare",))
        warm = run_pipeline(warm_spec, store_dir=tmp_path, keep_instances=True)
        fresh = run_pipeline(sub_spec, keep_instances=True)
        via_store = run_pipeline(
            sub_spec, store_dir=tmp_path, keep_instances=True
        )
        assert via_store.instances == fresh.instances
        assert via_store.aggregates == fresh.aggregates
        # and the hits were real: a direct shard run skips all simulation
        store = ResultStore(tmp_path)
        shard_results = run_shard(sub_spec, sub_spec.instances(), store=store)
        assert store.hits == len(sub_spec.instances())
        assert [r.metrics for r in shard_results] == [
            r.metrics for r in fresh.instances
        ]
        # the fully-warm store also serves the original spec untouched
        assert (
            run_pipeline(
                warm_spec, store_dir=tmp_path, keep_instances=True
            ).instances
            == warm.instances
        )

    def test_store_resume_zero_recompute(self, tmp_path):
        spec = tiny_spec(n_orgs=5, portfolio="fast")
        first = run_pipeline(spec, store_dir=tmp_path, keep_instances=True)
        rows_after_first = len(ResultStore(tmp_path))
        assert rows_after_first == len(spec.instances()) * 3  # fast = 3 rows
        again = run_pipeline(spec, store_dir=tmp_path, keep_instances=True)
        assert again.instances == first.instances
        assert len(ResultStore(tmp_path)) == rows_after_first  # no growth
        store = ResultStore(tmp_path)
        run_shard(spec, spec.instances(), store=store)
        assert store.misses == 0

    def test_store_and_jsonl_cache_compose(self, tmp_path):
        spec = tiny_spec(n_orgs=5, portfolio="fast")
        plain = run_pipeline(spec, keep_instances=True)
        cached = run_pipeline(
            spec, cache_dir=tmp_path / "cache", store_dir=tmp_path / "store",
            keep_instances=True,
        )
        assert cached.instances == plain.instances
        resumed = run_pipeline(
            spec, cache_dir=tmp_path / "cache", store_dir=tmp_path / "store",
            keep_instances=True,
        )
        assert resumed.computed == 0
        assert resumed.instances == plain.instances

    def test_callable_algorithms_disable_store(self, tmp_path):
        from repro.experiments.registry import PORTFOLIOS

        spec = tiny_spec(n_orgs=5)
        run_pipeline(
            spec, store_dir=tmp_path, algorithms=PORTFOLIOS["fast"],
        )
        assert not (tmp_path / "results.jsonl").exists()

    def test_junk_lines_skipped(self, tmp_path):
        spec = tiny_spec(n_orgs=5, portfolio="fast")
        first = run_pipeline(spec, store_dir=tmp_path, keep_instances=True)
        path = tmp_path / "results.jsonl"
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"torn": ')  # killed mid-write
        replay = run_pipeline(spec, store_dir=tmp_path, keep_instances=True)
        assert replay.instances == first.instances
