"""Tests for the text visualization helpers and the CLI."""

import pytest

from repro.algorithms import GreedyFifoScheduler, RefScheduler
from repro.cli import build_parser, main
from repro.sim.runner import compare_algorithms
from repro.viz import fairness_report, gantt, sparkline, utilities_bar

from .conftest import make_workload


class TestViz:
    def wl(self):
        return make_workload([1, 1], [(0, 0, 3), (0, 1, 2), (2, 1, 4)])

    def test_gantt(self):
        result = GreedyFifoScheduler().run(self.wl())
        chart = gantt(result.schedule, 2, 8)
        lines = chart.splitlines()
        assert len(lines) == 3  # axis + 2 machines
        assert "1" in chart and "2" in chart
        with pytest.raises(ValueError):
            gantt(result.schedule, 0, 8)

    def test_gantt_content(self):
        result = GreedyFifoScheduler().run(self.wl())
        chart = gantt(result.schedule, 2, 8)
        m0 = chart.splitlines()[1]
        assert m0.startswith("  M0 ")
        # org 0's size-3 job occupies machine 0 slots 0..2
        assert "|111" in m0

    def test_utilities_bar(self):
        result = GreedyFifoScheduler().run(self.wl())
        bars = utilities_bar(result, 8)
        assert "O(0)" in bars and "O(1)" in bars
        assert "#" in bars

    def test_fairness_report(self):
        wl = self.wl()
        comp = compare_algorithms(
            [GreedyFifoScheduler(10)], RefScheduler(10), wl, 10
        )
        report = fairness_report(comp)
        assert "GreedyFIFO" in report
        assert "avg delay" in report

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([0, 5, 10])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for argv in (
            ["figure2"],
            ["figure7"],
            ["gap"],
            ["gadget", "1,2", "2"],
            ["demo"],
            ["table1"],
            ["table2"],
            ["figure10"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_figure2_command(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "262" in out and "297" in out

    def test_figure7_command(self, capsys):
        assert main(["figure7"]) == 0
        out = capsys.readouterr().out
        assert "100%" in out and "75%" in out

    def test_gap_command(self, capsys):
        assert main(["gap", "--max-orgs", "8"]) == 0
        out = capsys.readouterr().out
        assert "m=    8" in out

    def test_gadget_command(self, capsys):
        assert main(["gadget", "1,2", "2"]) == 0
        out = capsys.readouterr().out
        assert "exists: True" in out

    @pytest.mark.slow
    def test_demo_command(self, capsys):
        assert main(["demo", "--duration", "800", "--orgs", "3"]) == 0
        out = capsys.readouterr().out
        assert "fairness vs REF" in out

    @pytest.mark.slow
    def test_figure10_command(self, capsys):
        assert main(["figure10", "--orgs", "2,3", "--duration", "600",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "organizations" in out
