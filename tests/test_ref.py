"""Tests for REF, the exact Shapley-fair scheduler (Figs. 1 + 3)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.ref import (
    GeneralRefScheduler,
    RefScheduler,
    update_vals_scaled,
)
from repro.shapley.exact import shapley_exact
from repro.shapley.games import SchedulingGame
from repro.sim.metrics import manhattan

from .conftest import make_workload, random_workload


class TestUpdateVals:
    def test_matches_exact_shapley(self):
        values = {0: 0, 0b01: 4, 0b10: 6, 0b11: 14}
        phi = update_vals_scaled(0b11, values)
        # k!=2; phi scaled by 2
        exact = shapley_exact(lambda m: values[m], 2)
        assert {u: Fraction(v, 2) for u, v in phi.items()} == {
            0: exact[0],
            1: exact[1],
        }

    def test_efficiency_scaled(self):
        values = {0: 0, 1: 3, 2: 5, 3: 11, 4: 2, 5: 13, 6: 9, 7: 21}
        phi = update_vals_scaled(0b111, values)
        assert sum(phi.values()) == 6 * values[0b111]  # 3! * v(grand)


class TestRefBehaviour:
    def test_single_org_runs_fifo(self):
        wl = make_workload([1], [(0, 0, 2), (0, 0, 3)])
        r = RefScheduler().run(wl)
        assert [(e.start, e.job.index) for e in r.schedule] == [
            (0, 0),
            (2, 1),
        ]

    def test_prioritizes_machine_contributor(self):
        """An organization that contributed its machine while idle gets
        priority when its own jobs arrive (the paper's core behaviour)."""
        # org 0: one machine, no jobs until t=4; org 1: no machines, jobs
        # from t=0 that run on org 0's machine.
        wl = make_workload(
            [1, 0],
            [(4, 0, 2), (0, 1, 2), (0, 1, 2), (4, 1, 2)],
        )
        r = RefScheduler().run(wl)
        starts = {(e.job.org, e.job.index): e.start for e in r.schedule}
        # at t=4 org 0's first job and org 1's third job compete; org 0
        # has been donating its machine, so its job must start first
        assert starts[(0, 0)] == 4
        assert starts[(1, 2)] == 6

    def test_ties_break_to_lower_org_id(self):
        wl = make_workload([1, 1], [(0, 0, 1), (0, 1, 1)])
        r = RefScheduler().run(wl)
        by_org = {e.job.org: e for e in r.schedule}
        assert by_org[0].start == 0 and by_org[1].start == 0

    def test_contributions_match_fair_game_shapley(self):
        wl = make_workload(
            [1, 1],
            [(0, 0, 1), (0, 0, 1), (0, 0, 1), (0, 1, 1)],
        )
        t = 4
        phi_ref = RefScheduler().contributions_at(wl, t)
        game = SchedulingGame(wl, t, policy="fair")
        phi_game = shapley_exact(game, 2)
        assert phi_ref == phi_game

    def test_collect_contributions_meta(self):
        wl = make_workload([1, 1], [(0, 0, 2), (0, 1, 2)])
        r = RefScheduler(horizon=6, collect_contributions=True).run(wl)
        phi = r.meta["contributions"]
        assert sum(phi) == r.value(6)  # efficiency at the horizon

    def test_contributions_efficiency(self):
        rng = np.random.default_rng(5)
        wl = random_workload(rng, n_orgs=3, n_jobs=12, max_release=8)
        t = 15
        phi = RefScheduler().contributions_at(wl, t)
        ref = RefScheduler(horizon=t).run(wl)
        assert sum(phi) == ref.value(t)

    def test_needs_an_organization(self):
        wl = make_workload([1], [(0, 0, 1)])
        with pytest.raises(ValueError):
            RefScheduler().run(wl, members=[])

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_schedules_feasible_and_greedy(self, seed):
        rng = np.random.default_rng(seed)
        wl = random_workload(rng, n_orgs=3, n_jobs=15, max_release=10)
        r = RefScheduler().run(wl)
        r.schedule.validate(wl)

    def test_horizon_prefix(self):
        rng = np.random.default_rng(11)
        wl = random_workload(rng, n_orgs=2, n_jobs=12)
        full = RefScheduler().run(wl)
        cut = RefScheduler(horizon=10).run(wl)
        assert list(cut.schedule) == [
            e for e in full.schedule if e.start < 10
        ]


class TestRefIsLocallyFairest:
    """Definition 3.1: at its first decision, REF's choice minimizes the
    distance between utility and contribution vectors among all greedy
    alternatives (checked by brute-forcing the alternative choices)."""

    def test_first_decision_minimizes_distance(self):
        wl = make_workload(
            [1, 1],
            [(0, 0, 2), (1, 0, 2), (0, 1, 3), (3, 1, 1)],
        )
        t_eval = 6
        ref = RefScheduler(horizon=t_eval)
        result = ref.run(wl)
        phi = ref.contributions_at(wl, t_eval)
        psi = result.utilities(t_eval)
        ref_dist = manhattan([float(p) for p in phi], psi)
        # alternative: force the *other* org first at every tie by
        # reversing ids via a relabeled workload; fairness distance of REF
        # must be minimal among the sampled alternatives
        from repro.algorithms import (
            GreedyFifoScheduler,
            RoundRobinScheduler,
        )

        for alt in (GreedyFifoScheduler(t_eval), RoundRobinScheduler(t_eval)):
            alt_res = alt.run(wl)
            alt_dist = manhattan(
                [float(p) for p in phi], alt_res.utilities(t_eval)
            )
            assert ref_dist <= alt_dist + 1e-9


class TestGeneralRef:
    def test_psi_sp_matches_specialized_ref(self):
        """With the strategy-proof utility, the general Distance rule and
        Fig. 3's argmax rule build the same schedule."""
        for seed in range(6):
            rng = np.random.default_rng(seed)
            wl = random_workload(rng, n_orgs=2, n_jobs=10, max_release=8)
            a = RefScheduler().run(wl)
            b = GeneralRefScheduler().run(wl)
            assert a.schedule == b.schedule, seed

    def test_runs_with_flow_time_utility(self):
        from repro.utility.classic import FlowTimeUtility

        wl = make_workload([1, 1], [(0, 0, 2), (0, 1, 2), (1, 0, 1)])
        r = GeneralRefScheduler(FlowTimeUtility()).run(wl)
        r.schedule.validate(wl)
        assert r.meta["utility"] == "neg_flow_time"
