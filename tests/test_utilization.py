"""Tests for the Theorem 6.2 utilization machinery (Section 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.greedy import fifo_select
from repro.analysis.utilization import (
    competitive_ratio,
    figure7_ratios,
    figure7_workload,
    greedy_busy_units,
    preemptive_max_units,
    random_adversarial_workload,
    work_upper_bound,
)

from .conftest import make_workload, random_workload


class TestBounds:
    def test_preemptive_bound_simple(self):
        # 2 machines, 3 jobs of size 4 released at 0, horizon 4:
        # at most 2 can run at a time -> 8 units
        wl = make_workload([2], [(0, 0, 4)] * 3)
        assert preemptive_max_units(wl, 4) == 8

    def test_preemptive_bound_respects_releases(self):
        wl = make_workload([1], [(3, 0, 10)])
        assert preemptive_max_units(wl, 5) == 2

    def test_preemptive_bound_job_width_one(self):
        """A single sequential job cannot use two machines at once."""
        wl = make_workload([2], [(0, 0, 10)])
        assert preemptive_max_units(wl, 5) == 5

    def test_preemptive_bound_empty(self):
        wl = make_workload([2], [])
        assert preemptive_max_units(wl, 10) == 0
        assert preemptive_max_units(make_workload([0], [(0, 0, 1)]), 10) == 0

    def test_cheap_bound_dominates(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            wl = random_adversarial_workload(rng)
            t = int(rng.integers(1, 30))
            assert preemptive_max_units(wl, t) <= work_upper_bound(wl, t)

    def test_greedy_cannot_beat_preemptive_bound(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            wl = random_adversarial_workload(rng)
            t = int(rng.integers(1, 30))
            assert greedy_busy_units(wl, t, fifo_select) <= preemptive_max_units(
                wl, t
            )


class TestFigure7:
    def test_exact_ratios(self):
        best, worst = figure7_ratios()
        assert best == 1.0
        assert worst == 0.75  # the tight Theorem 6.2 example

    def test_workload_shape(self):
        wl = figure7_workload()
        assert wl.n_machines == 4
        assert sorted(j.size for j in wl.jobs) == [3, 3, 3, 3, 6, 6]
        assert preemptive_max_units(wl, 6) == 24  # 100% is achievable


def _policies():
    """A diverse set of greedy selection policies (the theorem quantifies
    over *all* of them)."""
    def longest_queue(engine):
        return max(engine.waiting_orgs(), key=lambda u: (engine.waiting_count(u), -u))

    def reverse_fifo(engine):
        return max(engine.waiting_orgs(), key=lambda u: (engine.head_release(u), u))

    def lowest_org(engine):
        return engine.waiting_orgs()[0]

    return [fifo_select, longest_queue, reverse_fifo, lowest_org]


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 20_000), t=st.integers(4, 40))
def test_theorem_6_2_on_random_instances(seed, t):
    """Every greedy policy achieves >= 3/4 of the preemptive optimum."""
    rng = np.random.default_rng(seed)
    wl = random_adversarial_workload(rng)
    for policy in _policies():
        assert competitive_ratio(wl, t, policy) >= 0.75 - 1e-12


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 20_000))
def test_theorem_6_2_on_generic_workloads(seed):
    rng = np.random.default_rng(seed)
    wl = random_workload(rng, n_orgs=3, n_jobs=15, sizes=(1, 2, 6, 9))
    t = int(rng.integers(3, 25))
    assert competitive_ratio(wl, t, fifo_select) >= 0.75 - 1e-12


def test_figure7_is_the_worst_case_among_policies():
    """On the Fig. 7 instance no greedy policy drops below 75%."""
    wl = figure7_workload()
    for policy in _policies():
        assert competitive_ratio(wl, 6, policy) >= 0.75 - 1e-12
