"""Unit tests for repro.core.job."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.job import (
    Job,
    iter_release_times,
    merge_jobs,
    sort_jobs,
    split_job,
    validate_jobs,
)


class TestJobConstruction:
    def test_basic_fields(self):
        j = Job(release=3, org=1, index=0, size=5, id=7)
        assert (j.release, j.org, j.index, j.size, j.id) == (3, 1, 0, 5, 7)

    def test_default_id(self):
        assert Job(0, 0, 0, 1).id == -1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(release=-1, org=0, index=0, size=1),
            dict(release=0, org=-1, index=0, size=1),
            dict(release=0, org=0, index=-1, size=1),
            dict(release=0, org=0, index=0, size=0),
            dict(release=0, org=0, index=0, size=-2),
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Job(**kwargs)

    def test_jobs_are_immutable(self):
        j = Job(0, 0, 0, 1)
        with pytest.raises(AttributeError):
            j.size = 2

    def test_ordering_is_submission_order(self):
        a = Job(0, 0, 0, 9)
        b = Job(0, 1, 0, 1)
        c = Job(1, 0, 1, 1)
        assert sort_jobs([c, b, a]) == [a, b, c]


class TestManipulations:
    def test_delayed(self):
        j = Job(5, 0, 0, 2)
        assert j.delayed(3).release == 8
        assert j.delayed(0).release == 5

    def test_delayed_negative_rejected(self):
        with pytest.raises(ValueError):
            Job(0, 0, 0, 1).delayed(-1)

    def test_inflated(self):
        assert Job(0, 0, 0, 2).inflated(3).size == 5

    def test_inflated_negative_rejected(self):
        with pytest.raises(ValueError):
            Job(0, 0, 0, 1).inflated(-1)

    def test_split_job_sizes(self):
        pieces = split_job(Job(2, 1, 3, 6), [1, 2, 3])
        assert [p.size for p in pieces] == [1, 2, 3]
        assert all(p.release == 2 and p.org == 1 for p in pieces)
        assert [p.index for p in pieces] == [3, 4, 5]

    def test_split_job_bad_sizes(self):
        with pytest.raises(ValueError):
            split_job(Job(0, 0, 0, 5), [2, 2])
        with pytest.raises(ValueError):
            split_job(Job(0, 0, 0, 5), [5, 0])

    def test_merge_jobs(self):
        a = Job(0, 2, 4, 2)
        b = Job(1, 2, 5, 3)
        m = merge_jobs([a, b])
        assert m.size == 5
        assert m.index == 4
        assert m.release == 1  # merged work available when last piece is

    def test_merge_rejects_mixed_orgs(self):
        with pytest.raises(ValueError):
            merge_jobs([Job(0, 0, 0, 1), Job(0, 1, 0, 1)])

    def test_merge_rejects_non_consecutive(self):
        with pytest.raises(ValueError):
            merge_jobs([Job(0, 0, 0, 1), Job(0, 0, 2, 1)])

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_jobs([])


class TestValidation:
    def test_valid_stream_passes(self):
        validate_jobs(
            [Job(0, 0, 0, 1), Job(2, 0, 1, 1), Job(0, 1, 0, 4)]
        )

    def test_gap_in_indices_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            validate_jobs([Job(0, 0, 0, 1), Job(0, 0, 2, 1)])

    def test_duplicate_index_rejected(self):
        with pytest.raises(ValueError):
            validate_jobs([Job(0, 0, 0, 1), Job(1, 0, 0, 1)])

    def test_decreasing_release_rejected(self):
        with pytest.raises(ValueError, match="FIFO"):
            validate_jobs([Job(5, 0, 0, 1), Job(3, 0, 1, 1)])

    def test_release_times_iterator(self):
        jobs = [Job(3, 0, 0, 1), Job(1, 1, 0, 1), Job(3, 1, 1, 1)]
        assert list(iter_release_times(jobs)) == [1, 3]


@given(
    release=st.integers(0, 100),
    size=st.integers(1, 50),
    pieces=st.lists(st.integers(1, 10), min_size=1, max_size=5),
)
def test_split_then_merge_roundtrip(release, size, pieces):
    """Splitting then merging recovers the original size and position."""
    total = sum(pieces)
    job = Job(release, 0, 0, total)
    split = split_job(job, pieces)
    merged = merge_jobs(split)
    assert merged.size == job.size
    assert merged.index == job.index
    assert merged.release == job.release
