"""Unit tests for repro.core.workload."""

import pytest

from repro.core.job import Job
from repro.core.organization import Organization
from repro.core.workload import Workload

from .conftest import make_workload


class TestConstruction:
    def test_ids_assigned_when_negative(self):
        wl = make_workload([1], [(0, 0, 1), (1, 0, 2)])
        assert sorted(j.id for j in wl.jobs) == [0, 1]

    def test_non_contiguous_org_ids_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            Workload([Organization(1, 1)], [])

    def test_unknown_org_in_job_rejected(self):
        with pytest.raises(ValueError, match="unknown org"):
            Workload([Organization(0, 1)], [Job(0, 3, 0, 1)])

    def test_duplicate_explicit_ids_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Workload(
                [Organization(0, 1)],
                [Job(0, 0, 0, 1, id=5), Job(0, 0, 1, 1, id=5)],
            )

    def test_immutable(self):
        wl = make_workload([1], [(0, 0, 1)])
        with pytest.raises(AttributeError):
            wl.jobs = ()

    def test_fifo_validation_applied(self):
        with pytest.raises(ValueError, match="FIFO"):
            Workload(
                [Organization(0, 1)],
                [Job(5, 0, 0, 1), Job(1, 0, 1, 1)],
            )


class TestAccessors:
    def test_machine_counts_and_shares(self):
        wl = make_workload([3, 1], [(0, 0, 1)])
        assert wl.n_machines == 4
        assert wl.machine_counts() == (3, 1)
        assert wl.shares() == (0.75, 0.25)

    def test_shares_need_machines(self):
        wl = make_workload([0, 0], [(0, 0, 1)])
        with pytest.raises(ValueError):
            wl.shares()

    def test_jobs_of_in_fifo_order(self):
        wl = make_workload([1, 1], [(0, 0, 2), (1, 0, 1), (0, 1, 9)])
        assert [j.size for j in wl.jobs_of(0)] == [2, 1]
        assert [j.size for j in wl.jobs_of(1)] == [9]

    def test_stats(self):
        wl = make_workload([2], [(0, 0, 4), (2, 0, 2)])
        st = wl.stats()
        assert st.n_jobs == 2
        assert st.total_work == 6
        assert st.horizon == 4  # max(release + size)
        assert st.max_size == 4
        assert st.mean_size == 3.0


class TestTransforms:
    def test_restrict_keeps_ids_zeroes_others(self):
        wl = make_workload([2, 3, 1], [(0, 0, 1), (0, 1, 1), (0, 2, 1)])
        sub = wl.restrict([0, 2])
        assert sub.n_orgs == 3  # husks keep the id space
        assert sub.machine_counts() == (2, 0, 1)
        assert {j.org for j in sub.jobs} == {0, 2}

    def test_window_rebases_and_reindexes(self):
        wl = make_workload(
            [1], [(0, 0, 1), (5, 0, 2), (7, 0, 3), (11, 0, 4)]
        )
        win = wl.window(5, 10)
        assert [(j.release, j.size, j.index) for j in win.jobs] == [
            (0, 2, 0),
            (2, 3, 1),
        ]

    def test_window_bad_range(self):
        wl = make_workload([1], [(0, 0, 1)])
        with pytest.raises(ValueError):
            wl.window(5, 3)

    def test_with_unit_jobs_preserves_work(self):
        wl = make_workload([1, 1], [(0, 0, 3), (2, 1, 2)])
        unit = wl.with_unit_jobs()
        assert all(j.size == 1 for j in unit.jobs)
        assert len(unit.jobs) == 5
        assert sum(j.size for j in unit.jobs) == sum(
            j.size for j in wl.jobs
        )
        # releases preserved per chunk
        assert sorted(j.release for j in unit.jobs) == [0, 0, 0, 2, 2]

    def test_map_jobs_revalidates(self):
        wl = make_workload([1], [(0, 0, 1), (3, 0, 1)])
        shifted = wl.map_jobs(lambda j: j.delayed(2))
        assert [j.release for j in shifted.jobs] == [2, 5]

    def test_equality_and_hash(self):
        a = make_workload([1], [(0, 0, 1)])
        b = make_workload([1], [(0, 0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != make_workload([2], [(0, 0, 1)])
