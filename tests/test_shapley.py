"""Tests for exact Shapley computation, its axioms, and sampling."""

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalition import iter_subsets
from repro.shapley.exact import (
    check_additivity,
    check_dummy,
    check_efficiency,
    check_symmetry,
    shapley_by_permutations,
    shapley_exact,
    shapley_exact_scaled,
)
from repro.shapley.sampling import (
    SampledPrefixes,
    hoeffding_samples,
    sample_orderings,
    shapley_sample,
)


def random_game(k: int, rng: np.random.Generator) -> dict[int, int]:
    grand = (1 << k) - 1
    return {m: int(rng.integers(0, 100)) if m else 0 for m in iter_subsets(grand)}


# ----------------------------------------------------------------------
# exact computation
# ----------------------------------------------------------------------
class TestExact:
    def test_known_glove_game(self):
        """Classic 3-player glove game: v=1 iff the coalition contains
        player 0 (left glove) and at least one of players 1,2 (right)."""
        def v(mask):
            left = mask & 1
            right = mask & 0b110
            return 1 if (left and right) else 0

        phi = shapley_exact(v, 3)
        assert phi == [Fraction(2, 3), Fraction(1, 6), Fraction(1, 6)]

    def test_additive_game(self):
        """For an additive game phi_u = v({u})."""
        weights = [3, 5, 7]
        def v(mask):
            return sum(w for i, w in enumerate(weights) if mask >> i & 1)
        assert shapley_exact(v, 3) == weights

    def test_restricted_grand_coalition(self):
        def v(mask):
            return mask.bit_count() ** 2
        phi = shapley_exact(v, 3, grand=0b101)
        assert phi[1] == 0  # outsiders get nothing
        assert sum(phi) == v(0b101)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), k=st.integers(1, 5))
    def test_subset_equals_permutation_formula(self, seed, k):
        game = random_game(k, np.random.default_rng(seed))
        assert shapley_exact(game, k) == shapley_by_permutations(game, k)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), k=st.integers(1, 5))
    def test_scaled_matches_fractions(self, seed, k):
        game = random_game(k, np.random.default_rng(seed))
        phi = shapley_exact(game, k)
        scaled, denom = shapley_exact_scaled(game, k)
        assert denom == math.factorial(k)
        assert [Fraction(s, denom) for s in scaled] == phi

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), k=st.integers(1, 5))
    def test_efficiency_axiom(self, seed, k):
        game = random_game(k, np.random.default_rng(seed))
        phi = shapley_exact(game, k)
        assert check_efficiency(game, phi, (1 << k) - 1)

    def test_symmetry_axiom(self):
        # players 0 and 1 symmetric by construction: v counts members
        def v(mask):
            return mask.bit_count()
        phi = shapley_exact(v, 3)
        assert check_symmetry(v, phi, 0b111, 0, 1)
        assert phi[0] == phi[1] == phi[2] == 1

    def test_dummy_axiom(self):
        # player 2 never adds value
        def v(mask):
            return (mask & 0b011).bit_count() * 10
        phi = shapley_exact(v, 3)
        assert check_dummy(v, phi, 0b111, 2)
        assert phi[2] == 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500), k=st.integers(1, 4))
    def test_additivity_axiom(self, seed, k):
        rng = np.random.default_rng(seed)
        assert check_additivity(
            random_game(k, rng), random_game(k, rng), k, (1 << k) - 1
        )


# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------
class TestSampling:
    def test_hoeffding_formula(self):
        n = hoeffding_samples(5, 0.1, 0.9)
        assert n == math.ceil(25 / 0.01 * math.log(5 / 0.1))

    @pytest.mark.parametrize(
        "k,eps,lam",
        [(0, 0.1, 0.5), (3, 0, 0.5), (3, 0.1, 0), (3, 0.1, 1)],
    )
    def test_hoeffding_rejects_bad_params(self, k, eps, lam):
        with pytest.raises(ValueError):
            hoeffding_samples(k, eps, lam)

    def test_sample_orderings_shape(self):
        rng = np.random.default_rng(0)
        arr = sample_orderings(4, 10, rng)
        assert arr.shape == (10, 4)
        for row in arr:
            assert sorted(row) == [0, 1, 2, 3]

    def test_sampled_prefixes_structure(self):
        orderings = np.array([[1, 0, 2], [2, 1, 0]])
        sp = SampledPrefixes(3, orderings)
        assert sp.n == 2
        # player 1's prefix pairs: ({}, {1}) and ({2}, {1,2})
        assert sp.pairs[1] == ((0, 0b010), (0b100, 0b110))
        assert 0 in sp.masks and 0b111 in sp.masks

    def test_estimate_exact_for_additive_game(self):
        """On an additive game every ordering gives the same marginal, so
        the estimate is exact for any sample."""
        weights = [2, 4, 8]
        def v(mask):
            return sum(w for i, w in enumerate(weights) if mask >> i & 1)
        rng = np.random.default_rng(3)
        sp = SampledPrefixes(3, sample_orderings(3, 5, rng))
        values = {m: v(m) for m in sp.masks}
        assert sp.estimate(values) == weights

    def test_shapley_sample_converges(self):
        def v(mask):
            left = mask & 1
            right = mask & 0b110
            return 1 if (left and right) else 0
        rng = np.random.default_rng(0)
        est = shapley_sample(v, 3, 4000, rng)
        exact = [2 / 3, 1 / 6, 1 / 6]
        assert max(abs(a - b) for a, b in zip(est, exact)) < 0.05

    def test_estimate_is_unbiased_across_seeds(self):
        def v(mask):
            return mask.bit_count() ** 2
        exact = shapley_exact(v, 4)
        means = np.zeros(4)
        n_runs = 200
        for seed in range(n_runs):
            rng = np.random.default_rng(seed)
            means += np.array(shapley_sample(v, 4, 4, rng))
        means /= n_runs
        assert np.allclose(means, [float(e) for e in exact], atol=0.3)
