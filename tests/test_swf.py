"""Tests for the SWF parser/writer (Parallel Workloads Archive format)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.swf import SwfJob, SwfTrace, parse_swf, write_swf

SAMPLE = """\
; Version: 2.2
; Computer: Test Cluster
; MaxProcs: 128
1 0 5 100 1 -1 -1 1 200 -1 1 3 1 -1 1 -1 -1 -1
2 10 0 50 4 -1 -1 4 60 -1 1 5 1 -1 1 -1 -1 -1
3 20 2 75 2 -1 -1 2 80 -1 0 3 1 -1 1 -1 -1 -1
"""


class TestParse:
    def test_basic_fields(self):
        trace = parse_swf(SAMPLE)
        assert len(trace) == 3
        j = trace.jobs[0]
        assert (j.job_id, j.submit, j.wait, j.run, j.cpus, j.user) == (
            1, 0, 5, 100, 1, 3,
        )

    def test_header_preserved(self):
        trace = parse_swf(SAMPLE)
        assert len(trace.header) == 3
        assert trace.max_procs == 128

    def test_max_procs_fallback(self):
        trace = parse_swf("1 0 0 10 8 -1 -1 8")
        assert trace.max_procs == 8

    def test_n_users(self):
        trace = parse_swf(SAMPLE)
        assert trace.n_users == 2  # users 3 and 5

    def test_short_lines_padded(self):
        trace = parse_swf("7 100 0 60 1")
        j = trace.jobs[0]
        assert j.job_id == 7 and j.run == 60
        assert j.user == -1  # padded with SWF 'unknown'

    def test_blank_lines_skipped(self):
        trace = parse_swf("\n1 0 0 10 1\n\n2 5 0 10 1\n")
        assert len(trace) == 2

    def test_too_many_fields_rejected(self):
        line = " ".join(str(i) for i in range(19))
        with pytest.raises(ValueError, match="fields"):
            parse_swf(line)

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_swf("1 0 zero 10 1")

    def test_float_values_truncated(self):
        trace = parse_swf("1 0 0 10.0 1")
        assert trace.jobs[0].run == 10


class TestWrite:
    def test_round_trip(self):
        trace = parse_swf(SAMPLE)
        text = write_swf(trace)
        again = parse_swf(text)
        assert again.jobs == trace.jobs
        assert again.header == trace.header

    def test_write_to_file(self, tmp_path):
        trace = parse_swf(SAMPLE)
        path = tmp_path / "trace.swf"
        write_swf(trace, path)
        from repro.workloads.swf import load_swf

        assert load_swf(path).jobs == trace.jobs

    def test_write_bare_job_list(self):
        jobs = [SwfJob(job_id=1, submit=0, run=5)]
        text = write_swf(jobs)
        assert parse_swf(text).jobs[0].run == 5


@settings(max_examples=30)
@given(
    jobs=st.lists(
        st.builds(
            SwfJob,
            job_id=st.integers(1, 10**6),
            submit=st.integers(0, 10**7),
            wait=st.integers(-1, 10**5),
            run=st.integers(1, 10**6),
            cpus=st.integers(1, 4096),
            user=st.integers(-1, 500),
        ),
        max_size=20,
    )
)
def test_roundtrip_property(jobs):
    assert parse_swf(write_swf(jobs)).jobs == tuple(jobs)
