"""Tests for the Theorem 5.1 SUBSETSUM gadget.

The headline integration test: computing the dummy organization's Shapley
contribution with the exact REF machinery and decoding
``floor((k+2)! phi_a / L)`` recovers the subset-count oracle n_<x(S) --
i.e., our pipeline reproduces the reduction's arithmetic.
"""

from itertools import permutations
from math import factorial

import pytest

from repro.algorithms.ref import RefScheduler
from repro.analysis.hardness import (
    ORG_A,
    ORG_B,
    count_orderings_below,
    decode_contribution,
    gadget_eval_time,
    gadget_large_size,
    gadget_workload,
    subsets_below,
)


class TestCombinatorics:
    def test_subsets_below(self):
        assert subsets_below([1, 2], 2) == [(), (0,)]
        assert subsets_below([1, 2], 4) == [(), (0,), (1,), (0, 1)]
        assert subsets_below([1, 2], 0) == []

    def test_count_formula_matches_bruteforce(self):
        """n_<x(S) literally counts orderings of S + {a, b} where a arrives
        right after (some below-x subset) + {b}."""
        values = [1, 2, 3]
        x = 3
        k = len(values)
        # brute force over all orderings of k+2 elements; a=k, b=k+1
        a, b = k, k + 1
        count = 0
        for order in permutations(range(k + 2)):
            pos = order.index(a)
            before = set(order[:pos])
            if b not in before:
                continue
            ssum = sum(values[i] for i in before - {b})
            if ssum < x:
                count += 1
        assert count == count_orderings_below(values, x)

    def test_large_size_formula(self):
        values = [1, 2]
        x_tot = 5
        assert gadget_large_size(values) == 4 * 2 * x_tot**2 * factorial(4) + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            gadget_workload([], 1)
        with pytest.raises(ValueError):
            gadget_workload([0], 1)
        with pytest.raises(ValueError):
            gadget_workload([1], -1)


class TestGadgetStructure:
    def test_workload_layout(self):
        values = [1, 2]
        wl = gadget_workload(values, 2)
        assert wl.n_orgs == 4
        assert all(o.machines == 1 for o in wl.organizations)
        a, b = ORG_A(values), ORG_B(values)
        assert len(wl.jobs_of(a)) == 0
        b_jobs = wl.jobs_of(b)
        assert [j.release for j in b_jobs] == [2, 2 * 2 + 3]
        assert b_jobs[1].size == gadget_large_size(values)
        for i, xi in enumerate(values):
            sizes = [j.size for j in wl.jobs_of(i)]
            assert sizes == [1, 1, 2 * (sum(values) + 2), 2 * xi]


@pytest.mark.slow
class TestEndToEndDecoding:
    """Theorem 5.1, executed: REF contributions decode subset-sum counts."""

    @pytest.mark.parametrize(
        "values,x", [([1, 2], 2), ([1, 2], 3), ([2, 3], 5)]
    )
    def test_decode_matches_oracle(self, values, x):
        wl = gadget_workload(values, x)
        t = gadget_eval_time(values, x)
        phi = RefScheduler().contributions_at(wl, t)
        a = ORG_A(values)
        assert decode_contribution(phi[a], values) == count_orderings_below(
            values, x
        )

    def test_subset_sum_answer(self):
        """Compare n_<x and n_<x+1 to answer SUBSETSUM (paper's last step)."""
        values = [1, 2]
        a = ORG_A(values)

        def decoded(x):
            wl = gadget_workload(values, x)
            phi = RefScheduler().contributions_at(
                wl, gadget_eval_time(values, x)
            )
            return decode_contribution(phi[a], values)

        # a subset summing to exactly 2 exists ({2}): counts must differ
        assert decoded(3) > decoded(2)
        # oracle agreement on both
        assert decoded(2) == count_orderings_below(values, 2)
        assert decoded(3) == count_orderings_below(values, 3)
