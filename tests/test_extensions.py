"""Tests for the Section 8 extensions: related machines and rigid jobs."""

import numpy as np
import pytest

from repro.core.job import Job
from repro.core.organization import Organization
from repro.core.workload import Workload
from repro.extensions.related import (
    RelatedEngine,
    effective_duration,
    run_related,
)
from repro.extensions.rigid import (
    RigidEngine,
    RigidJob,
    parallel_loss_witness,
    rigid_fifo,
    widest_fit,
)
from repro.utility.strategyproof import psi_sp

from .conftest import make_workload


def fifo(engine):
    return min(engine.waiting_orgs(), key=lambda u: (engine.head_release(u), u))


class TestRelatedMachines:
    def test_effective_duration(self):
        assert effective_duration(10, 1.0) == 10
        assert effective_duration(10, 2.0) == 5
        assert effective_duration(10, 3.0) == 4  # ceil(10/3)
        assert effective_duration(1, 10.0) == 1
        with pytest.raises(ValueError):
            effective_duration(5, 0)

    def wl(self, speeds=(2.0, 1.0)):
        orgs = [
            Organization(0, 1, speed=speeds[0]),
            Organization(1, 1, speed=speeds[1]),
        ]
        jobs = [Job(0, 0, 0, 6), Job(0, 1, 0, 6), Job(0, 0, 1, 6)]
        return Workload(orgs, jobs)

    def test_fast_machine_preferred_and_shorter(self):
        wl = self.wl()
        psis, log = run_related(wl, fifo, t_end=12)
        by_job = {(e.job.org, e.job.index): e for e in log}
        first = by_job[(0, 0)]
        assert first.machine == 0  # the speed-2 machine
        assert first.duration == 3  # 6 units of work at speed 2

    def test_identical_speeds_match_core_engine(self):
        """With all speeds 1 the related engine reproduces the core
        engine's schedule and utilities."""
        from repro.algorithms.greedy import fifo_select
        from repro.core.engine import ClusterEngine

        wl = make_workload(
            [2, 1], [(0, 0, 3), (1, 0, 2), (0, 1, 4), (5, 1, 1)]
        )
        core = ClusterEngine(wl)
        core.drive(fifo_select)
        psis, log = run_related(wl, fifo, t_end=20)
        assert psis == core.psis(20)
        assert [(e.start, e.machine, e.job.id) for e in sorted(log)] == [
            (e.start, e.machine, e.job.id) for e in core.schedule()
        ]

    def test_psi_counts_effective_duration(self):
        wl = self.wl()
        engine = RelatedEngine(wl)
        engine.drive(fifo)
        t = 10
        expected = [0, 0]
        for e in engine.log:
            expected[e.job.org] += psi_sp([(e.start, e.duration)], t)
        assert engine.psis(t) == expected

    def test_faster_pool_completes_sooner(self):
        """Faster machines realize shorter effective jobs: the makespan
        shrinks (note psi_sp counts *executed effective units*, so the
        faster pool accrues fewer unit-parts -- it delivers the same work
        in less machine time)."""
        _, slow_log = run_related(self.wl((1.0, 1.0)), fifo, t_end=30)
        _, fast_log = run_related(self.wl((3.0, 3.0)), fifo, t_end=30)
        assert max(e.end for e in fast_log) < max(e.end for e in slow_log)

    def test_event_contract(self):
        wl = self.wl()
        eng = RelatedEngine(wl)
        with pytest.raises(ValueError):
            eng.start_next(0)  # nothing released yet? release at 0...
        eng.advance_to(0)
        eng.start_next(0)
        with pytest.raises(ValueError):
            eng.advance_to(-1)


class TestRigidJobs:
    def test_job_validation(self):
        with pytest.raises(ValueError):
            RigidJob(0, 0, 0, 0, 1)
        with pytest.raises(ValueError):
            RigidJob(0, 0, 0, 1, 0)
        assert RigidJob(0, 0, 0, 3, 4).area == 12

    def test_engine_rejects_oversized(self):
        with pytest.raises(ValueError, match="wider"):
            RigidEngine(2, [RigidJob(0, 0, 0, 1, 3)], 1)

    def test_width_aware_greedy(self):
        # 4 machines; a 3-wide job and two 1-wide jobs
        jobs = [
            RigidJob(0, 0, 0, 2, 3),
            RigidJob(0, 1, 0, 2, 1),
            RigidJob(0, 1, 1, 2, 1),
        ]
        eng = RigidEngine(4, jobs, 2)
        eng.drive(widest_fit)
        starts = {(j.org, j.index): s for j, s in eng.log}
        assert starts[(0, 0)] == 0  # widest first
        assert starts[(1, 0)] == 0  # one thin job fits beside it
        assert starts[(1, 1)] == 2  # the other must wait

    def test_fifo_head_blocks_org(self):
        """FIFO per org: a wide head job blocks the org's later thin job
        even while machines sit free (head-of-line blocking)."""
        jobs = [
            RigidJob(1, 0, 0, 2, 4),  # wide head (released t=1)
            RigidJob(1, 0, 1, 1, 1),  # thin, stuck behind it
            RigidJob(0, 1, 0, 5, 2),  # org 1 occupies 2 machines [0,5)
        ]
        eng = RigidEngine(4, jobs, 2)
        eng.drive(rigid_fifo)
        starts = {(j.org, j.index): s for j, s in eng.log}
        assert starts[(1, 0)] == 0
        # from t=1 two machines are free and org 0's thin job would fit,
        # but its 4-wide FIFO head cannot start until t=5
        assert starts[(0, 0)] == 5
        assert starts[(0, 1)] == 7

    def test_busy_area_and_utilization(self):
        jobs = [RigidJob(0, 0, 0, 3, 2)]
        eng = RigidEngine(2, jobs, 1)
        eng.drive(rigid_fifo)
        assert eng.busy_area(3) == 6
        assert eng.utilization(3) == 1.0

    def test_psis_scale_with_width(self):
        jobs = [RigidJob(0, 0, 0, 2, 3)]
        eng = RigidEngine(4, jobs, 1)
        eng.drive(rigid_fifo)
        assert eng.psis(5) == [3 * psi_sp([(0, 2)], 5)]

    def test_parallel_loss_witness_breaks_sequential_bound(self):
        """Paper Section 8: with rigid jobs, greedy utilization can fall
        (far) below the sequential-job 3/4 guarantee."""
        greedy, packed = parallel_loss_witness()
        assert packed == 1.0
        assert greedy < 0.75
        assert greedy == pytest.approx(1 / 8)
