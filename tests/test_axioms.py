"""Tests for the executable axiom checkers and workload manipulations."""

import pytest

from repro.utility.axioms import (
    apply_delay,
    apply_merge,
    apply_split,
    check_merge_split_invariance,
    check_start_time_anonymity,
    check_task_count_anonymity,
    delay_never_profitable,
)
from repro.utility.classic import CompletedCountUtility, FlowTimeUtility
from repro.utility.strategyproof import StrategyProofUtility

from .conftest import make_workload


class TestCheckers:
    def setup_method(self):
        self.sp = StrategyProofUtility()

    def test_psi_sp_passes_all(self):
        base_a = [(0, 2), (5, 1)]
        base_b = [(3, 4)]
        assert check_start_time_anonymity(
            self.sp, base_a, base_b, 20, s_a=1, s_b=6, p=3
        )
        assert check_task_count_anonymity(
            self.sp, base_a, base_b, 20, s=2, p=3
        )
        assert check_merge_split_invariance(
            self.sp, base_a, 20, s=1, p1=2, p2=3
        )
        assert delay_never_profitable(self.sp, base_a, 20, s=4, p=2)

    def test_flow_time_fails_merge_split(self):
        util = FlowTimeUtility()
        assert not check_merge_split_invariance(
            util, [], 20, s=0, p1=2, p2=3
        )

    def test_completed_count_fails_start_anonymity(self):
        util = CompletedCountUtility()
        # moving a completed job around changes nothing -> gain is 0, and
        # the axiom demands strictly positive gains
        assert not check_start_time_anonymity(
            util, [], [], 20, s_a=0, s_b=5, p=2
        )

    def test_time_bound_enforced(self):
        with pytest.raises(ValueError):
            check_start_time_anonymity(
                self.sp, [], [], 5, s_a=5, s_b=0, p=1
            )
        with pytest.raises(ValueError):
            check_task_count_anonymity(self.sp, [], [], 5, s=5, p=1)


class TestWorkloadManipulations:
    def base(self):
        return make_workload(
            [1, 1],
            [(0, 0, 6), (2, 0, 3), (0, 1, 4)],
        )

    def test_apply_split(self):
        wl = apply_split(self.base(), org=0, job_index=0, sizes=[2, 4])
        sizes = [j.size for j in wl.jobs_of(0)]
        assert sizes == [2, 4, 3]
        # FIFO indices contiguous
        assert [j.index for j in wl.jobs_of(0)] == [0, 1, 2]
        # other organizations untouched
        assert [j.size for j in wl.jobs_of(1)] == [4]

    def test_apply_split_bad_sizes(self):
        with pytest.raises(ValueError):
            apply_split(self.base(), org=0, job_index=0, sizes=[1, 1])

    def test_apply_merge(self):
        wl = apply_merge(self.base(), org=0, first_index=0, count=2)
        jobs = wl.jobs_of(0)
        assert [j.size for j in jobs] == [9]
        assert jobs[0].release == 2  # released when the last piece was

    def test_apply_merge_bad_range(self):
        with pytest.raises(ValueError):
            apply_merge(self.base(), org=0, first_index=1, count=3)
        with pytest.raises(ValueError):
            apply_merge(self.base(), org=0, first_index=0, count=1)

    def test_apply_delay(self):
        wl = apply_delay(self.base(), org=0, delta=5)
        assert [j.release for j in wl.jobs_of(0)] == [5, 7]
        assert [j.release for j in wl.jobs_of(1)] == [0]

    def test_split_preserves_total_work(self):
        before = sum(j.size for j in self.base().jobs)
        wl = apply_split(self.base(), org=0, job_index=1, sizes=[1, 1, 1])
        assert sum(j.size for j in wl.jobs) == before
