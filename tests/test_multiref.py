"""Tests for the cross-instance batched REF driver: bit-identity against
the per-instance scheduler, per-instance certification fallback (one
overflowing instance never evicts its batch siblings), and the jagged
lockstep handling of instances with very different event counts."""

import numpy as np
import pytest

from repro.algorithms.multiref import batchable, ref_results_batched
from repro.algorithms.ref import RefScheduler
from repro.core.job import Job
from repro.core.multikernel import MultiInstanceKernel, instance_bound
from repro.core.kernel import KernelUnsafe, _QUERY_CAP
from repro.core.organization import Organization
from repro.core.workload import Workload


def rand_workload(k, m_per, n_jobs, seed, max_rel=200, max_size=9):
    r = np.random.default_rng(seed)
    orgs = [Organization(i, int(r.integers(1, m_per + 1))) for i in range(k)]
    raw = sorted(
        (
            int(r.integers(0, max_rel)),
            int(r.integers(0, k)),
            int(r.integers(1, max_size)),
        )
        for _ in range(n_jobs)
    )
    per_org: dict[int, int] = {}
    jobs = []
    for rel, org, size in raw:
        idx = per_org.get(org, 0)
        per_org[org] = idx + 1
        jobs.append(Job(release=rel, org=org, index=idx, size=size))
    return Workload(orgs, jobs)


def huge_workload(k=5):
    """Fails the per-instance int64 certification by sheer job size."""
    return Workload(
        [Organization(i, 1) for i in range(k)],
        [Job(release=0, org=o, index=0, size=10**17) for o in range(k)],
    )


class TestBatchedRefBitIdentity:
    def test_matches_serial_across_k_and_horizons(self):
        items = [
            (rand_workload(5, 3, 40, 1), 250),
            (rand_workload(5, 2, 25, 2), None),  # run to exhaustion
            (rand_workload(6, 2, 30, 3), 180),
            (rand_workload(5, 4, 60, 4), 300),
        ]
        results = ref_results_batched(items)
        for (wl, horizon), res in zip(items, results):
            assert res is not None
            serial = RefScheduler(horizon=horizon).run(wl)
            assert res.schedule == serial.schedule
            assert res.algorithm == "REF"
            assert res.members == serial.members

    def test_jagged_event_counts_share_one_batch(self):
        """Wildly different event counts per instance: each instance's
        clock advances through its own event sequence only."""
        items = [
            (rand_workload(5, 2, 120, 7, max_rel=400), 600),
            (rand_workload(5, 2, 4, 8, max_rel=20), 600),
            (rand_workload(5, 1, 1, 9, max_rel=1), 600),
        ]
        for (wl, horizon), res in zip(items, ref_results_batched(items)):
            assert res is not None
            assert res.schedule == RefScheduler(horizon=horizon).run(wl).schedule

    def test_empty_workload_instance(self):
        empty = Workload([Organization(i, 1) for i in range(5)], [])
        busy = rand_workload(5, 2, 20, 11)
        results = ref_results_batched([(empty, 100), (busy, 100)])
        assert results[0] is not None and not results[0].schedule.entries
        assert (
            results[1].schedule
            == RefScheduler(horizon=100).run(busy).schedule
        )

    def test_single_instance_batch(self):
        wl = rand_workload(5, 3, 30, 21)
        (res,) = ref_results_batched([(wl, 200)])
        assert res.schedule == RefScheduler(horizon=200).run(wl).schedule


class TestPerInstanceCertification:
    def test_small_k_not_admitted(self):
        wl = rand_workload(3, 2, 10, 5)
        assert not batchable(wl, 100)
        assert ref_results_batched([(wl, 100)]) == [None]

    def test_overflow_not_admitted(self):
        huge = huge_workload()
        assert instance_bound(huge, None) >= _QUERY_CAP
        assert not batchable(huge, None)

    def test_overflow_sibling_does_not_perturb_batch(self):
        """The eviction contract: the middle instance fails certification
        and comes back None; its siblings' schedules are exactly the
        per-instance results."""
        items = [
            (rand_workload(5, 3, 40, 11, max_rel=60), 200),
            (huge_workload(), 10**18),
            (rand_workload(5, 2, 30, 12, max_rel=60), 200),
        ]
        results = ref_results_batched(items)
        assert results[1] is None
        for j in (0, 2):
            assert results[j] is not None
            serial = RefScheduler(horizon=items[j][1]).run(items[j][0])
            assert results[j].schedule == serial.schedule

    def test_kernel_rejects_uncertified_instance(self):
        with pytest.raises(KernelUnsafe):
            MultiInstanceKernel([(huge_workload(), [1, 2, 3], None)])


class TestMultiKernelInternals:
    def test_instance_bound_folds_horizon(self):
        wl = rand_workload(5, 2, 10, 31, max_rel=50)
        assert instance_bound(wl, 10_000) > instance_bound(wl, None)

    def test_row_blocks_and_instance_map(self):
        a = rand_workload(5, 2, 10, 41)
        b = rand_workload(5, 3, 15, 42)
        masks = [1, 3, 7, 31]
        kern = MultiInstanceKernel([(a, masks, 100), (b, masks, 100)])
        assert kern.n == 2 * len(masks)
        assert list(kern.row0) == [0, len(masks)]
        assert list(kern.row_inst) == [0] * len(masks) + [1] * len(masks)
        # padding machine columns of the narrower instance are never free
        assert kern.n_mach_max == max(a.n_machines, b.n_machines)
        assert kern.free[: len(masks), a.n_machines :].sum() == 0
