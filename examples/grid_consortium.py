#!/usr/bin/env python
"""Grid consortium: the paper's motivating scenario, end to end.

Five organizations (think university compute centers, as in Grid'5000 /
PlanetLab / EGEE) federate their clusters: asymmetric machine endowments
(Zipf), bursty per-user demand, peak loads offloaded to partners' idle
machines.  We generate an LPC-EGEE-like synthetic trace, run the full
algorithm portfolio -- the exact REF benchmark, the randomized RAND, the
DIRECTCONTR heuristic, the fair share family and round robin -- and rank
them by the paper's unfairness metric.

Run:  python examples/grid_consortium.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import RefScheduler, compare_algorithms
from repro.experiments.harness import ExperimentConfig, default_algorithms, sample_instance


def main(seed: int = 7) -> None:
    duration = 4_000
    config = ExperimentConfig(
        traces=("LPC-EGEE",),
        n_orgs=5,
        duration=duration,
        machine_dist="zipf",
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    workload = sample_instance("LPC-EGEE", config, rng)

    print("consortium instance")
    print(f"  {workload.stats()}")
    print(f"  machine endowments (Zipf): {workload.machine_counts()}")
    print(f"  jobs per org: "
          f"{[len(workload.jobs_of(u)) for u in range(workload.n_orgs)]}")
    print()

    comparison = compare_algorithms(
        default_algorithms(duration, seed),
        RefScheduler(horizon=duration),
        workload,
        duration,
    )

    print(f"{'algorithm':<16}{'delta_psi':>14}{'avg delay':>12}{'seconds':>10}")
    for name in comparison.ranking():
        o = comparison.by_name(name)
        print(
            f"{o.algorithm:<16}{o.delta_psi:>14.0f}"
            f"{o.avg_delay:>12.2f}{o.wall_time_s:>10.2f}"
        )

    print()
    print("reference (REF) per-organization utilities at the horizon:")
    ref_psi = comparison.reference.utilities(duration)
    for org in workload.organizations:
        print(f"  {org.name}: machines={org.machines:<3} psi={ref_psi[org.id]}")

    best = comparison.ranking()[0]
    print()
    print(
        f"most Shapley-fair polynomial algorithm on this instance: {best} "
        f"(avg delay {comparison.by_name(best).avg_delay:.2f} time units/unit work)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
