#!/usr/bin/env python
"""Strategy-proofness demo: gaming the scheduler by reshaping your workload.

Section 4's argument, executed.  An organization can present the same
computational demand in different shapes: split a job into pieces, merge
pieces into one job, or delay submissions.  Under the strategy-proof
utility psi_sp none of these change what the organization is credited with;
under flow time (the classic metric) they do -- so a flow-time-fair
scheduler invites manipulation.

Run:  python examples/strategyproofness.py
"""

from __future__ import annotations

from repro import Job, Organization, Workload
from repro.algorithms import GeneralRefScheduler
from repro.utility.axioms import apply_delay, apply_merge, apply_split
from repro.utility.classic import FlowTimeUtility, flow_time
from repro.utility.strategyproof import StrategyProofUtility, psi_sp


def base_workload() -> Workload:
    """Two orgs, one machine each; org 0's middle job (size 6) is the one
    it will try to reshape."""
    orgs = [Organization(0, 1), Organization(1, 1)]
    jobs = [
        Job(0, 0, 0, 3),
        Job(0, 0, 1, 6),  # <- the manipulable job
        Job(4, 0, 2, 3),
        Job(0, 1, 0, 4),
        Job(3, 1, 1, 4),
        Job(6, 1, 2, 4),
    ]
    return Workload(orgs, jobs)


def credited_utilities(workload: Workload, t: int) -> tuple[list[int], list[int]]:
    """Run the fair scheduler under psi_sp and report (psi_sp, flow-time)
    views of org 0's outcome."""
    result = GeneralRefScheduler(StrategyProofUtility(), horizon=t).run(workload)
    pairs0 = result.schedule.org_pairs(0)
    releases0 = [j.release for j in workload.jobs_of(0)]
    # align releases with schedule pairs by start order (FIFO = index order)
    psi = psi_sp(pairs0, t)
    # flow over completed jobs only
    done = [(s, p) for s, p in pairs0 if s + p <= t]
    fl = flow_time(done, releases0[: len(done)])
    return psi, fl


def main() -> None:
    t = 24
    wl = base_workload()

    manipulations = {
        "honest": wl,
        "split 6 -> 2+2+2": apply_split(wl, org=0, job_index=1, sizes=[2, 2, 2]),
        "split 6 -> 1x6": apply_split(wl, org=0, job_index=1, sizes=[1] * 6),
        "merge jobs 0+1": apply_merge(wl, org=0, first_index=0, count=2),
        "delay all by 2": apply_delay(wl, org=0, delta=2),
    }

    print("org 0 reshapes its workload; scheduler = REF (psi_sp):\n")
    print(f"{'presentation':<20}{'psi_sp(org0)':>14}{'flow(org0)':>12}")
    results = {}
    for name, variant in manipulations.items():
        psi, fl = credited_utilities(variant, t)
        results[name] = (psi, fl)
        print(f"{name:<20}{psi:>14}{fl:>12}")

    honest_psi = results["honest"][0]
    print()
    gains = {
        name: psi - honest_psi
        for name, (psi, fl) in results.items()
        if name != "honest"
    }
    print("psi_sp gain from manipulating (positive = profitable):")
    for name, gain in gains.items():
        print(f"  {name:<20} {gain:+d}")
    print()
    if all(g <= 0 for g in gains.values()):
        print("-> no manipulation is profitable under psi_sp (Theorem 4.1).")
    else:
        print("-> unexpected: a manipulation helped; please report a bug.")

    # contrast: under the flow-time utility the *metric itself* moves even
    # for identical computational demand
    print()
    print("contrast -- flow time of the same demand in different shapes")
    print("(lower is 'better' for a flow-time-fair scheduler):")
    util = FlowTimeUtility()
    shapes = {
        "one size-6 job": [(0, 6)],
        "two size-3 back-to-back": [(0, 3), (3, 3)],
        "six size-1 back-to-back": [(i, 1) for i in range(6)],
    }
    for name, pairs in shapes.items():
        print(f"  {name:<26} flow={-util.value(pairs, 10):>3}  "
              f"psi_sp={psi_sp(pairs, 10)}")
    print()
    print("-> identical demand, three different flow times (manipulable),")
    print("   one single psi_sp value (strategy-proof).")


if __name__ == "__main__":
    main()
