#!/usr/bin/env python
"""Shapley playground: exact values, sampling, axioms, on scheduling games.

Walks through the cooperative-game layer on its own:

1. a hand-sized scheduling game -- coalition values, exact Shapley division,
   the four axioms checked numerically;
2. the non-supermodularity witness (Prop. 5.5) -- why off-the-shelf
   supermodular samplers don't apply;
3. Monte-Carlo estimation -- empirical error against the Theorem 5.6
   Hoeffding bound.

Run:  python examples/shapley_playground.py
"""

from __future__ import annotations

import numpy as np

from repro import Job, Organization, Workload
from repro.analysis.properties import non_supermodular_witness
from repro.core.coalition import iter_members, iter_subsets
from repro.shapley.exact import (
    check_dummy,
    check_efficiency,
    check_symmetry,
    shapley_exact,
)
from repro.shapley.games import SchedulingGame
from repro.shapley.sampling import hoeffding_samples, shapley_sample


def main() -> None:
    # --- 1. a small scheduling game ---------------------------------------
    # org 0: machine + 2 jobs; org 1: machine only; org 2: jobs only
    wl = Workload(
        [Organization(0, 1), Organization(1, 1), Organization(2, 0)],
        [
            Job(0, 0, 0, 2),
            Job(0, 0, 1, 2),
            Job(0, 2, 0, 2),
            Job(0, 2, 1, 2),
        ],
    )
    t = 8
    game = SchedulingGame(wl, t, policy="fair")
    k = 3
    grand = (1 << k) - 1

    print("coalition values v(C, t=8)  [machine-only org 1, job-only org 2]")
    for mask in iter_subsets(grand):
        members = "{" + ",".join(str(u) for u in iter_members(mask)) + "}"
        print(f"  v({members:<7}) = {game(mask)}")

    phi = shapley_exact(game, k)
    print("\nexact Shapley division of v(grand):")
    for u in range(k):
        print(f"  phi({u}) = {phi[u]} = {float(phi[u]):.2f}")

    print("\naxioms:")
    print(f"  efficiency: {check_efficiency(game, phi, grand)}")
    print(f"  dummy(org1 if it never helps): "
          f"{check_dummy(game, phi, grand, 1)}")
    print(f"  symmetry(0,2): {check_symmetry(game, phi, grand, 0, 2)}")

    # --- 2. non-supermodularity -------------------------------------------
    w = non_supermodular_witness()
    print("\nProp. 5.5 witness (a,b: 2 unit jobs each; c: machine only):")
    print(f"  v(ac)={w.v_ac} v(bc)={w.v_bc} v(abc)={w.v_abc} v(c)={w.v_c}")
    print(f"  v(abc)+v(c) < v(ac)+v(bc)  ->  supermodular? "
          f"{w.is_supermodular_here}")

    # --- 3. sampling vs the Hoeffding bound --------------------------------
    print("\nMonte-Carlo estimation on the scheduling game:")
    exact = [float(p) for p in phi]
    v_grand = float(game(grand))
    print(f"{'N':>7}{'rel. Manhattan error':>22}")
    for n in (8, 64, 512):
        errs = []
        for seed in range(10):
            est = shapley_sample(game, k, n, np.random.default_rng(seed))
            errs.append(sum(abs(a - b) for a, b in zip(est, exact)) / v_grand)
        print(f"{n:>7}{np.mean(errs):>22.4f}")
    n_bound = hoeffding_samples(k, epsilon=0.1, lam=0.95)
    print(f"\nTheorem 5.6: eps=0.1 @ 95% confidence needs N = {n_bound}")
    print("(the bound is worst-case; empirical convergence is much faster)")


if __name__ == "__main__":
    main()
