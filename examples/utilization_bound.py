#!/usr/bin/env python
"""The price of greedy fairness: Theorem 6.2's 3/4 utilization bound.

Any greedy algorithm (fair or not) wastes at most 25% of the machines
against the offline optimum, and the bound is tight (Fig. 7).  This script
(a) replays the tight instance, (b) stress-tests random adversarial
instances against the certified preemptive upper bound, and (c) renders the
two Fig. 7 schedules as ASCII Gantt charts.

Run:  python examples/utilization_bound.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.greedy import fifo_select
from repro.analysis.utilization import (
    competitive_ratio,
    figure7_ratios,
    figure7_workload,
    greedy_busy_units,
    preemptive_max_units,
    random_adversarial_workload,
)
from repro.core.engine import ClusterEngine


def gantt(schedule, n_machines: int, t_end: int) -> str:
    """Tiny ASCII Gantt renderer: one row per machine, one char per slot."""
    rows = [["."] * t_end for _ in range(n_machines)]
    for e in schedule:
        label = str(e.job.org + 1)
        for slot in range(e.start, min(e.end, t_end)):
            rows[e.machine][slot] = label
    return "\n".join(
        f"  M{m} |" + "".join(row) + "|" for m, row in enumerate(rows)
    )


def main() -> None:
    # --- (a) the tight example ------------------------------------------
    wl = figure7_workload()
    best, worst = figure7_ratios()
    print("Fig. 7 instance: 4 machines; 4 size-3 jobs (org 1), 2 size-6 (org 2)")
    print(f"  best greedy tie-break : {best:.0%} utilization at T=6")
    print(f"  worst greedy tie-break: {worst:.0%} utilization at T=6\n")

    def o2_first(engine):
        w = engine.waiting_orgs()
        return 1 if 1 in w else w[0]

    def o1_first(engine):
        w = engine.waiting_orgs()
        return 0 if 0 in w else w[0]

    for name, policy in (("O(2) first (optimal)", o2_first),
                         ("O(1) first (worst)", o1_first)):
        eng = ClusterEngine(wl)
        eng.drive(policy, until=20)
        print(f"{name}:")
        print(gantt(eng.schedule(), 4, 9))
        print()

    # --- (b) stress test --------------------------------------------------
    rng = np.random.default_rng(0)
    n = 300
    worst_seen = 1.0
    ratios = []
    for _ in range(n):
        instance = random_adversarial_workload(rng)
        t = int(rng.integers(4, 30))
        ratio = competitive_ratio(instance, t, fifo_select)
        ratios.append(ratio)
        worst_seen = min(worst_seen, ratio)
    print(f"random adversarial sweep ({n} instances, FIFO greedy):")
    print(f"  mean ratio  : {np.mean(ratios):.4f}")
    print(f"  worst ratio : {worst_seen:.4f}   (theorem floor: 0.7500)")
    assert worst_seen >= 0.75 - 1e-12

    # --- (c) where the waste goes -----------------------------------------
    t = 6
    busy_worst = greedy_busy_units(wl, t, o1_first)
    opt = preemptive_max_units(wl, t)
    print()
    print(f"on the tight instance at T={t}: greedy(worst)={busy_worst} units, "
          f"optimal={opt} units -> {busy_worst/opt:.0%}")
    print("the 25% ceiling is the full price of scheduling greedily --")
    print("fairness itself costs nothing beyond it (Section 6).")


if __name__ == "__main__":
    main()
