#!/usr/bin/env python
"""Quickstart: Shapley-fair scheduling of a three-organization consortium.

The instance is built to show *why* static shares mis-measure fairness:

* org A brings 3 machines but submits nothing until t=12;
* org B brings 1 machine and submits steadily;
* org C brings **no machines** -- only jobs (a free rider by share-based
  accounting, yet its jobs create value the moment idle machines exist).

The classic FairShare algorithm (static machine-count shares) starves C;
the Shapley-based REF credits every organization by its actual effect on
the others and schedules C's work when that is what a fair division says.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FairShareScheduler,
    Job,
    Organization,
    RefScheduler,
    RoundRobinScheduler,
    Workload,
    avg_delay,
    unfairness,
)


def build_workload() -> Workload:
    orgs = [
        Organization(0, machines=3, name="org-A"),
        Organization(1, machines=1, name="org-B"),
        Organization(2, machines=0, name="org-C"),
    ]
    jobs = [
        # phase 1 (t=0..): B and C burst while A's machines sit idle
        *[Job(release=0, org=1, index=i, size=4) for i in range(6)],
        *[Job(release=0, org=2, index=i, size=4) for i in range(6)],
        # phase 2 (t=12): everyone competes for the pool
        *[Job(release=12, org=0, index=i, size=3) for i in range(6)],
        *[Job(release=12, org=1, index=6 + i, size=3) for i in range(4)],
        *[Job(release=12, org=2, index=6 + i, size=3) for i in range(4)],
    ]
    return Workload(orgs, jobs)


def main() -> None:
    wl = build_workload()
    t_end = 30

    ref_scheduler = RefScheduler(horizon=t_end, collect_contributions=True)
    ref = ref_scheduler.run(wl)
    fair_share = FairShareScheduler(horizon=t_end).run(wl)
    round_robin = RoundRobinScheduler(horizon=t_end).run(wl)

    print("instance:", wl.stats())
    print()
    contributions = ref.meta["contributions"]
    print(f"{'':<8}{'machines':>9}{'phi (Shapley)':>15}"
          f"{'psi REF':>9}{'psi FairShare':>15}{'psi RoundRobin':>16}")
    for org in wl.organizations:
        print(
            f"{org.name:<8}{org.machines:>9}"
            f"{float(contributions[org.id]):>15.1f}"
            f"{ref.utilities(t_end)[org.id]:>9}"
            f"{fair_share.utilities(t_end)[org.id]:>15}"
            f"{round_robin.utilities(t_end)[org.id]:>16}"
        )

    print()
    print("unfairness vs the exact fair schedule (paper's Delta-psi / p_tot,")
    print("the average unjustified delay per unit of completed work):")
    for name, result in (("FairShare", fair_share), ("RoundRobin", round_robin)):
        print(
            f"  {name:<12} delta_psi={unfairness(result, ref, t_end):>6.0f}"
            f"   avg delay={avg_delay(result, ref, t_end):.2f}"
        )

    print()
    print("note org-C: zero machines means zero *share*, so FairShare")
    print("pushes its jobs to the back of every queue -- but its Shapley")
    print("contribution is positive (its jobs are the value!), so the fair")
    print("schedule treats it far better.  This is the paper's core point:")
    print("contributions are dynamic, shares are not.")

    print()
    print("REF schedule (first 12 starts):")
    for e in list(ref.schedule)[:12]:
        print(
            f"  t={e.start:<3} machine={e.machine} "
            f"{wl.organizations[e.job.org].name} job#{e.job.index}"
        )


if __name__ == "__main__":
    main()
