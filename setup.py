"""Compatibility shim: lets ``pip install -e .`` / ``setup.py develop`` work
on minimal environments without the ``wheel`` package (PEP 660 editable
installs need it; this legacy path does not).  All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
