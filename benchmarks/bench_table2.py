"""Table 2 (paper Section 7.3): the Table 1 protocol on 10x longer windows.

The paper's point: unfairness *grows* with the horizon -- static target
shares drift ever further from true (dynamic) contributions, so on long
traces the gap between distributive fairness and Shapley fairness widens.

Quick mode: duration 20,000 vs Table 1's 5,000 (4x) to keep runtime sane.
Full mode: the paper's 500,000.
"""

from __future__ import annotations

from repro.experiments.reporting import render_table
from repro.experiments.tables import TABLE2_PAPER, table1, table2

from .conftest import FULL, once


def test_table2(benchmark):
    if FULL:
        result = once(
            benchmark, table2, duration=500_000, n_repeats=25, seed=1
        )
        short = table1(duration=50_000, n_repeats=25, seed=1)
    else:
        result = once(benchmark, table2, duration=20_000, n_repeats=2, seed=1)
        short = table1(duration=5_000, n_repeats=2, seed=1)

    print()
    print("=" * 72)
    print("Table 2 -- avg delay over the longer window, reproduced")
    print(render_table(result))
    print()
    print("paper's published means (full-size traces):")
    header = "            " + "".join(
        t.rjust(16) for t in result.config.traces
    )
    print(header)
    for alg, row in TABLE2_PAPER.items():
        cells = "".join(f"{row[t]:>16g}" for t in result.config.traces)
        print(f"{alg:<12}{cells}")
    print("=" * 72)

    # Headline claim: for the contended traces, unfairness on the long
    # window exceeds the short window for the non-Shapley algorithms.
    grew = 0
    checked = 0
    for trace in ("LPC-EGEE", "RICC"):
        for alg in ("RoundRobin", "FairShare", "CurrFairShare"):
            long_m = result.mean_std(trace, alg)[0]
            short_m = short.mean_std(trace, alg)[0]
            checked += 1
            if long_m >= short_m:
                grew += 1
    assert grew >= checked // 2, f"unfairness grew only in {grew}/{checked}"
