"""Ablation A1: RAND's sample count N (the paper runs N=15 and N=75).

Sweeps N on unit-size workloads (where Theorem 5.6's FPRAS guarantee
applies) and on general-size workloads (where RAND is a heuristic),
reporting the fairness gap to REF and the wall-clock cost.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.rand import RandScheduler
from repro.algorithms.ref import RefScheduler
from repro.sim.metrics import unfairness

from .conftest import FULL, once
from tests.conftest import random_workload

NS = (1, 5, 15, 75) if not FULL else (1, 5, 15, 75, 200)


def _sweep(sizes, machine_counts, n_jobs, t_end, seeds):
    rows = []
    for n_orderings in NS:
        gaps, secs = [], 0.0
        for seed in seeds:
            rng = np.random.default_rng(seed)
            wl = random_workload(
                rng,
                n_orgs=3,
                n_jobs=n_jobs,
                max_release=t_end // 2,
                sizes=sizes,
                machine_counts=machine_counts,
            )
            ref = RefScheduler(horizon=t_end).run(wl)
            t0 = time.perf_counter()
            r = RandScheduler(n_orderings, seed=seed, horizon=t_end).run(wl)
            secs += time.perf_counter() - t0
            v = max(1, ref.value(t_end))
            gaps.append(unfairness(r, ref, t_end) / v)
        rows.append((n_orderings, float(np.mean(gaps)), secs / len(seeds)))
    return rows


def test_rand_sample_count_unit_jobs(benchmark):
    seeds = range(8 if FULL else 4)
    rows = once(benchmark, _sweep, (1,), [2, 1, 1], 60, 50, seeds)
    print()
    print("=" * 60)
    print("RAND ablation (unit jobs, FPRAS regime)")
    print(f"{'N':>5}{'rel. gap to REF':>18}{'sec/run':>10}")
    for n, gap, sec in rows:
        print(f"{n:>5}{gap:>18.4f}{sec:>10.3f}")
    print("=" * 60)
    # more samples must not hurt (allowing sampling noise)
    assert rows[-1][1] <= rows[0][1] + 0.02


def test_rand_sample_count_general_jobs(benchmark):
    seeds = range(6 if FULL else 3)
    rows = once(benchmark, _sweep, (2, 3, 7), [2, 1, 1], 40, 80, seeds)
    print()
    print("=" * 60)
    print("RAND ablation (general job sizes, heuristic regime)")
    print(f"{'N':>5}{'rel. gap to REF':>18}{'sec/run':>10}")
    for n, gap, sec in rows:
        print(f"{n:>5}{gap:>18.4f}{sec:>10.3f}")
    print("=" * 60)
    assert all(gap < 0.5 for _, gap, _ in rows)
