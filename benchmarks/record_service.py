"""Record online-service event throughput into BENCH_service.json.

Streams a multi-organization synthetic workload through
:class:`repro.service.ClusterService` under several policies and records
sustained decision-event throughput (events/sec), plus the snapshot /
restore cost on a mid-sized journal::

    PYTHONPATH=src python benchmarks/record_service.py \
        [--output BENCH_service.json] [--jobs 600]

``events_per_sec`` is the ISSUE 3 acceptance number: the service must
sustain event streams, not just pass equivalence tests.  Single-engine
policies (DIRECTCONTR, FAIRSHARE, FIFO) are the serving-throughput
headline; REF is recorded at small k as the exact-recursion baseline
(its per-event cost is exponential in k by design, Prop. 3.4).  Every
recorded run also re-verifies replay == batch equivalence -- a throughput
number for a wrong schedule would be meaningless.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.job import Job  # noqa: E402
from repro.core.organization import Organization  # noqa: E402
from repro.core.workload import Workload  # noqa: E402
from repro.service import ClusterService, ReplayDriver  # noqa: E402

#: (record key, policy name, org machine counts, job count scale)
RUNS = (
    ("directcontr_k5", "directcontr", (3, 2, 2, 1, 1), 1.0),
    ("fairshare_k5", "fairshare", (3, 2, 2, 1, 1), 1.0),
    ("fifo_k5", "fifo", (3, 2, 2, 1, 1), 1.0),
    ("rand_k5", "rand", (3, 2, 2, 1, 1), 0.5),
    ("ref_k4", "ref", (2, 1, 1, 1), 0.25),
)


def service_workload(
    machine_counts: "tuple[int, ...]", n_jobs: int, seed: int = 0
) -> Workload:
    """A bursty multi-org stream sized for sustained-throughput timing."""
    rng = np.random.default_rng(seed)
    k = len(machine_counts)
    orgs = [Organization(i, m) for i, m in enumerate(machine_counts)]
    releases: "dict[int, list[int]]" = {u: [] for u in range(k)}
    t = 0
    for _ in range(n_jobs):
        t += int(rng.integers(0, 3))
        releases[int(rng.integers(0, k))].append(t)
    jobs = []
    for u, rels in releases.items():
        for i, r in enumerate(sorted(rels)):
            jobs.append(Job(r, u, i, int(rng.integers(1, 6)), id=-1))
    return Workload(orgs, jobs)


def record(n_jobs: int) -> dict:
    runs: dict = {}
    for key, policy, machines, scale in RUNS:
        wl = service_workload(machines, max(20, int(n_jobs * scale)))
        report = ReplayDriver(wl, policy, seed=0).run()
        if not report.equivalent:
            raise SystemExit(
                f"{key}: replay != batch -- refusing to record a "
                f"throughput number for a wrong schedule"
            )
        runs[key] = {
            "policy": report.policy,
            "n_orgs": len(machines),
            "n_jobs": report.n_jobs,
            "n_events": report.n_events,
            "wall_time_s": round(report.wall_time_s, 4),
            "events_per_sec": round(report.events_per_sec, 1),
            "replay_equals_batch": report.equivalent,
        }

    # snapshot / restore cost on a mid-sized journal
    wl = service_workload((3, 2, 2, 1, 1), max(20, n_jobs))
    svc = ClusterService(wl.machine_counts(), "directcontr", seed=0)
    for job in sorted(wl.jobs):
        svc.submit_job(job)
        svc.advance(job.release)
    svc.drain()
    t0 = time.perf_counter()
    snap = svc.snapshot()
    snapshot_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    restored = ClusterService.restore(snap)
    restore_s = time.perf_counter() - t0
    if restored.schedule() != svc.schedule():
        raise SystemExit("restore != live -- refusing to record")
    return {
        "bench": "service",
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "runs": runs,
        "snapshot": {
            "journal_ops": len(svc.journal),
            "snapshot_s": round(snapshot_s, 4),
            "restore_s": round(restore_s, 4),
            "restore_verified": True,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_service.json")
    parser.add_argument("--jobs", type=int, default=600)
    args = parser.parse_args()
    payload = record(args.jobs)
    Path(args.output).write_text(json.dumps(payload, indent=1) + "\n")
    print(json.dumps(payload, indent=1))
    return 0


if __name__ == "__main__":
    sys.exit(main())
