"""Record online-service event throughput (thin wrapper).

The recorder now lives in :mod:`repro.bench` behind ``repro bench
service``; this script is kept as the historical entry point::

    PYTHONPATH=src python benchmarks/record_service.py \
        [--output BENCH_service.json] [--jobs 600]

``events_per_sec`` is the ISSUE 3 acceptance number: the service must
sustain event streams, not just pass equivalence tests.  Every recorded
run re-verifies replay == batch equivalence first -- a throughput number
for a wrong schedule would be meaningless.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import main as bench_main  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_service.json"
        ),
    )
    parser.add_argument("--jobs", type=int, default=600)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--check-against", dest="check_against", default=None)
    parser.add_argument("--tolerance", type=float, default=0.35)
    args = parser.parse_args()
    args.bench = "service"
    return bench_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
