"""Small-coalition dispatch guard (the BENCH_fleet.json k=4 regression).

PR 1's vectorized psi_sp ledger made REF k=8 2.5x faster but left k=4 at
0.94x of the seed: with <= 15 subcoalitions, per-event numpy overhead
exceeds the Python loops it replaces.  REF therefore dispatches on
``VECTORIZE_MIN_K``: below it the exact big-int path (with the cached
``_update_terms`` subset decomposition) runs, at or above it the ledger
does.  These benchmarks pin the dispatch to the right side of the
crossover on the machine actually running them:

* the k=4 bench instance must be no slower on the chosen (exact) path
  than with vectorization forced on;
* the k=8 bench instance must be no slower on the chosen (vectorized)
  path than with vectorization forced off.

Both comparisons are measured back-to-back in-process (best-of-N), so the
assertions are about the *dispatch decision*, not about absolute machine
speed; a generous 15% slack absorbs timer noise.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.algorithms import ref as ref_mod
from repro.algorithms.ref import RefScheduler

from .bench_engine import ref_k8_workload
from tests.conftest import random_workload

#: Noise allowance for the paired timing comparisons.
SLACK = 1.15


def k4_workload():
    """The BENCH_fleet.json k=4 instance (test_ref_event_cost's shape)."""
    rng = np.random.default_rng(3)
    return random_workload(
        rng, n_orgs=4, n_jobs=40, max_release=60,
        sizes=(1, 2, 5), machine_counts=[1, 1, 1, 1],
    )


def best_of(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _timed_with_threshold(workload, threshold: int, monkeypatch) -> float:
    monkeypatch.setattr(ref_mod, "VECTORIZE_MIN_K", threshold)
    RefScheduler().run(workload)  # warm caches before timing
    return best_of(lambda: RefScheduler().run(workload))


def test_k4_exact_dispatch_beats_forced_vectorization(benchmark, monkeypatch):
    wl = k4_workload()
    chosen = _timed_with_threshold(wl, ref_mod.VECTORIZE_MIN_K, monkeypatch)
    forced = _timed_with_threshold(wl, 0, monkeypatch)
    benchmark.extra_info.update({"exact_s": chosen, "vectorized_s": forced})
    benchmark(lambda: None)  # timings recorded above; keep the fixture happy
    assert chosen <= forced * SLACK, (
        f"k=4 pays vectorization overhead: exact {chosen:.5f}s vs "
        f"forced-vectorized {forced:.5f}s"
    )


def test_k8_vectorized_dispatch_beats_forced_exact(benchmark, monkeypatch):
    wl = ref_k8_workload()
    chosen = _timed_with_threshold(wl, ref_mod.VECTORIZE_MIN_K, monkeypatch)
    forced = _timed_with_threshold(wl, 99, monkeypatch)
    benchmark.extra_info.update({"vectorized_s": chosen, "exact_s": forced})
    benchmark(lambda: None)
    assert chosen <= forced * SLACK, (
        f"k=8 regressed below the exact path: vectorized {chosen:.4f}s vs "
        f"forced-exact {forced:.4f}s"
    )


def test_schedules_identical_across_dispatch(monkeypatch):
    """The dispatch is a pure performance choice: both paths must produce
    the identical REF schedule on both bench instances."""
    for wl in (k4_workload(), ref_k8_workload()):
        monkeypatch.setattr(ref_mod, "VECTORIZE_MIN_K", 0)
        vectorized = RefScheduler().run(wl).schedule
        monkeypatch.setattr(ref_mod, "VECTORIZE_MIN_K", 99)
        exact = RefScheduler().run(wl).schedule
        assert list(vectorized) == list(exact)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-v"]))
