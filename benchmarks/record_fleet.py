"""Record the CoalitionFleet speedup trajectory into BENCH_fleet.json.

Times the REF k=8 event loop (benchmarks/bench_engine.ref_k8_workload), the
REF k=4 instance of ``test_ref_event_cost``, and a plain engine drive, then
writes the measurements next to the frozen seed baselines so the perf
trajectory across PRs stays comparable::

    PYTHONPATH=src python benchmarks/record_fleet.py [--output BENCH_fleet.json]

The seed numbers were measured on the pre-fleet implementation (PR 1, same
harness, best of 5) and are kept fixed; ``speedup_ref_k8`` is the
acceptance metric for the fleet refactor (target >= 2.0 on comparable
hardware -- CI containers vary, so the committed BENCH_fleet.json records
the reference measurement).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np  # noqa: E402

from repro.algorithms.greedy import fifo_select  # noqa: E402
from repro.algorithms.ref import RefScheduler  # noqa: E402
from repro.core.engine import ClusterEngine  # noqa: E402

from benchmarks.bench_engine import ref_k8_workload  # noqa: E402
from tests.conftest import random_workload  # noqa: E402

#: Pre-refactor wall-clock baselines (seconds, best of 5; PR 1 container).
SEED_BASELINES = {
    "ref_k8_seconds": 0.2286,
    "ref_k4_seconds": 0.0053,
}


def best_of(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure() -> dict:
    wl8 = ref_k8_workload()
    rng = np.random.default_rng(3)
    wl4 = random_workload(
        rng, n_orgs=4, n_jobs=40, max_release=60,
        sizes=(1, 2, 5), machine_counts=[1, 1, 1, 1],
    )
    rng = np.random.default_rng(42)
    wl_engine = random_workload(
        rng, n_orgs=4, n_jobs=60, max_release=200,
        sizes=(1, 3, 9, 27), machine_counts=[2, 1, 1, 1],
    )

    def drive_engine():
        eng = ClusterEngine(wl_engine)
        eng.drive(fifo_select)

    ref_k8 = best_of(lambda: RefScheduler().run(wl8))
    ref_k4 = best_of(lambda: RefScheduler().run(wl4))
    engine_drive = best_of(drive_engine)
    # the k=4 dispatch guard: with vectorization forced on, the same
    # instance must not beat the exact small-k path REF chooses (see
    # benchmarks/bench_smallk.py for the asserting version)
    from repro.algorithms import ref as ref_mod

    default_threshold = ref_mod.VECTORIZE_MIN_K
    try:
        ref_mod.VECTORIZE_MIN_K = 0
        ref_k4_vectorized = best_of(lambda: RefScheduler().run(wl4))
    finally:
        ref_mod.VECTORIZE_MIN_K = default_threshold
    return {
        "seed": SEED_BASELINES,
        "fleet": {
            "ref_k8_seconds": round(ref_k8, 4),
            "ref_k4_seconds": round(ref_k4, 4),
            "ref_k4_forced_vectorized_seconds": round(ref_k4_vectorized, 4),
            "engine_drive_seconds": round(engine_drive, 4),
        },
        "speedup_ref_k8": round(SEED_BASELINES["ref_k8_seconds"] / ref_k8, 2),
        "speedup_ref_k4": round(SEED_BASELINES["ref_k4_seconds"] / ref_k4, 2),
        "smallk_dispatch_ok": bool(ref_k4 <= ref_k4_vectorized * 1.15),
        "vectorize_min_k": default_threshold,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_fleet.json"),
    )
    args = parser.parse_args()
    results = measure()
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
