"""Record the CoalitionFleet/FleetKernel speedup trajectory (thin wrapper).

The recorder now lives in :mod:`repro.bench` behind the ``repro bench
fleet`` CLI subcommand; this script is kept as the historical entry point::

    PYTHONPATH=src python benchmarks/record_fleet.py \
        [--output BENCH_fleet.json] [--quick] \
        [--check-against BENCH_fleet.json] [--tolerance 0.35]

It times the REF k=8 event loop on both backends (plus the k=10 and RAND
N=75 oracle tiers), writes the measurements next to the frozen seed
baselines, and with ``--check-against`` acts as the perf-gate: exit 1 when
a kernel speedup *ratio* regresses below the committed record.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import SEED_BASELINES, main as bench_main  # noqa: E402,F401


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_fleet.json"),
    )
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--check-against", default=None, dest="check_against")
    parser.add_argument("--tolerance", type=float, default=0.35)
    args = parser.parse_args()
    args.bench = "fleet"
    return bench_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
