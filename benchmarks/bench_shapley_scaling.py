"""Ablation A2: exact Shapley vs Monte-Carlo sampling on scheduling games.

Two questions the paper's complexity story raises in practice:

* cost: exact computation is Theta(2^k) coalition values (FPT in k,
  Cor. 3.5) -- how does wall-clock grow with k?
* accuracy: how fast does the sampling estimator close in on the exact
  values, relative to the Hoeffding bound of Theorem 5.6?
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.ref import RefScheduler
from repro.shapley.exact import shapley_exact
from repro.shapley.games import SchedulingGame
from repro.shapley.sampling import hoeffding_samples, shapley_sample

from .bench_engine import ref_k8_workload
from .conftest import FULL, once
from tests.conftest import random_workload

KS = (2, 3, 4, 5, 6, 7, 8) if FULL else (2, 3, 4, 5, 6)


def test_ref_recursion_k8(benchmark):
    """Exact Shapley contributions through the full REF recursion at k=8:
    the CoalitionFleet + vectorized-UpdateVals hot path (the Fig. 10 / Cor.
    3.5 FPT machinery; >= 2x vs the seed implementation, see
    BENCH_fleet.json)."""
    wl = ref_k8_workload()

    def run():
        return RefScheduler(collect_contributions=True).run(wl)

    result = benchmark(run)
    phi = result.meta["contributions"]
    # efficiency: the exact shares divide the grand value at the eval time
    assert sum(phi) == result.value(result.meta["contributions_time"])


def test_exact_cost_vs_k(benchmark):
    def sweep():
        rows = []
        for k in KS:
            rng = np.random.default_rng(k)
            wl = random_workload(
                rng,
                n_orgs=k,
                n_jobs=10 * k,
                max_release=30,
                sizes=(1,),
                machine_counts=[1] * k,
            )
            game = SchedulingGame(wl, t=40)
            t0 = time.perf_counter()
            phi = shapley_exact(game, k)
            elapsed = time.perf_counter() - t0
            rows.append((k, elapsed, float(sum(phi))))
        return rows

    rows = once(benchmark, sweep)
    print()
    print("=" * 60)
    print("exact Shapley cost vs k (unit-job scheduling game)")
    print(f"{'k':>3}{'seconds':>12}{'v(grand)':>12}")
    for k, sec, total in rows:
        print(f"{k:>3}{sec:>12.4f}{total:>12.1f}")
    print("=" * 60)
    # efficiency axiom: shares sum to the grand value
    for k, _, total in rows:
        rng = np.random.default_rng(k)
        wl = random_workload(
            rng, n_orgs=k, n_jobs=10 * k, max_release=30, sizes=(1,),
            machine_counts=[1] * k,
        )
        assert total == SchedulingGame(wl, t=40)((1 << k) - 1)


def test_sampling_error_vs_hoeffding(benchmark):
    k = 5
    rng = np.random.default_rng(7)
    wl = random_workload(
        rng, n_orgs=k, n_jobs=60, max_release=30, sizes=(1,),
        machine_counts=[1] * k,
    )
    game = SchedulingGame(wl, t=40)
    exact = [float(p) for p in shapley_exact(game, k)]
    v_grand = float(game((1 << k) - 1))
    ns = (4, 16, 64, 256) if not FULL else (4, 16, 64, 256, 1024)

    def sweep():
        rows = []
        for n in ns:
            errs = []
            for seed in range(5):
                est = shapley_sample(
                    game, k, n, np.random.default_rng(seed)
                )
                errs.append(
                    sum(abs(a - b) for a, b in zip(est, exact)) / v_grand
                )
            rows.append((n, float(np.mean(errs))))
        return rows

    rows = once(benchmark, sweep)
    print()
    print("=" * 64)
    print("sampling error (Manhattan, relative to v) vs sample count")
    print(f"{'N':>6}{'mean rel. error':>18}{'Hoeffding eps for N':>22}")
    for n, err in rows:
        # invert Theorem 5.6: eps(N) = k * sqrt(ln(k/(1-lam))/N), lam=0.9
        eps = k * np.sqrt(np.log(k / 0.1) / n)
        print(f"{n:>6}{err:>18.4f}{eps:>22.3f}")
    n_bound = hoeffding_samples(k, 0.5, 0.9)
    print(f"Theorem 5.6 sample bound for eps=0.5, lambda=0.9: N = {n_bound}")
    print("=" * 64)
    # error decreases with N and stays far below the (loose) bound
    errs = [e for _, e in rows]
    assert errs[-1] <= errs[0]
    for n, err in rows:
        eps = k * np.sqrt(np.log(k / 0.1) / n)
        assert err <= eps
