"""Record pipeline serial-vs-parallel wall time (thin wrapper).

The recorder now lives in :mod:`repro.bench` behind ``repro bench
pipeline``; this script is kept as the historical entry point::

    PYTHONPATH=src python benchmarks/record_pipeline.py \
        [--output BENCH_pipeline.json] [--workers 4] [--repeats 12]

``speedup_parallel`` is the acceptance metric for the pipeline fan-out
(target >= 2.0 at workers=4 on >= 4-CPU hardware).  Judge the committed
number against its recorded ``cpus`` field -- process fan-out cannot beat
serial on a single-CPU container.  Bit-equality of the serial, parallel
and cache-resumed runs is asserted before anything is recorded.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import main as bench_main  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
        ),
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=12)
    args = parser.parse_args()
    args.bench = "pipeline"
    return bench_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
