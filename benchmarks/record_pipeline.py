"""Record pipeline serial-vs-parallel wall time into BENCH_pipeline.json.

Runs a multi-instance Table-1-class experiment (the ``synthetic`` family,
LPC-EGEE, paper-protocol portfolio) three ways and records the wall
times::

    serial      workers=1, no cache
    parallel    workers=4, no cache
    resume      workers=1, replayed entirely from a warm JSONL checkpoint

    PYTHONPATH=src python benchmarks/record_pipeline.py \
        [--output BENCH_pipeline.json] [--workers 4] [--repeats 12]

``speedup_parallel`` is the acceptance metric for the pipeline fan-out
(target >= 2.0 at workers=4 on >= 4-CPU hardware).  The recording
machine's CPU budget is written alongside (``cpus``): process fan-out
cannot beat serial on a single-CPU container, so judge the committed
number against its recorded ``cpus`` — CI regenerates this file on
multi-core runners and uploads it as an artifact next to BENCH_fleet.json.
``speedup_resume`` shows what the checkpoint buys: a finished experiment
replays in milliseconds.  Bit-equality of the three runs' aggregates is
asserted here as well as in the test suite.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.pipeline import run_pipeline  # noqa: E402
from repro.experiments.spec import ScenarioSpec  # noqa: E402


def bench_spec(repeats: int) -> ScenarioSpec:
    """A Table-1-class experiment: one trace, paper portfolio, many
    windows (the repeat axis is what the executor fans out)."""
    return ScenarioSpec(
        family="synthetic",
        traces=("LPC-EGEE",),
        n_orgs=5,
        duration=8_000,
        n_repeats=repeats,
        seed=0,
    )


def measure(workers: int, repeats: int) -> dict:
    spec = bench_spec(repeats)

    t0 = time.perf_counter()
    serial = run_pipeline(spec, workers=1, keep_instances=True)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_pipeline(spec, workers=workers, keep_instances=True)
    parallel_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as cache_dir:
        run_pipeline(spec, workers=workers, cache_dir=cache_dir)  # warm
        t0 = time.perf_counter()
        resumed = run_pipeline(spec, workers=1, cache_dir=cache_dir,
                               keep_instances=True)
        resume_s = time.perf_counter() - t0

    if serial.instances != parallel.instances:
        raise AssertionError("parallel run is not bit-identical to serial")
    if serial.instances != resumed.instances:
        raise AssertionError("cache replay is not bit-identical to serial")
    if resumed.computed != 0:
        raise AssertionError("warm-cache replay recomputed instances")

    return {
        "spec": {
            "family": spec.family,
            "traces": list(spec.traces),
            "duration": spec.duration,
            "n_repeats": spec.n_repeats,
            "portfolio": spec.portfolio,
            "hash": spec.content_hash(),
        },
        "instances": len(spec.instances()),
        "workers": workers,
        "serial_seconds": round(serial_s, 2),
        "parallel_seconds": round(parallel_s, 2),
        "resume_seconds": round(resume_s, 4),
        "speedup_parallel": round(serial_s / parallel_s, 2),
        "speedup_resume": round(serial_s / resume_s, 1),
        "cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
        ),
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=12)
    args = parser.parse_args()
    results = measure(args.workers, args.repeats)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
