"""Record pipeline serial/batched/parallel wall time (thin wrapper).

The recorder lives in :mod:`repro.bench` behind ``repro bench pipeline``;
this script is kept as the historical entry point::

    PYTHONPATH=src python benchmarks/record_pipeline.py \
        [--output BENCH_pipeline.json] [--workers 4] [--repeats 12]

``speedup_batched`` (cross-instance fused kernel vs per-instance serial,
same machine) is the primary acceptance metric (target > 2.0);
``speedup_parallel`` is the fan-out metric (target > 3.0 at workers=4 on
>= 4-CPU hardware).  Bit-equality of the serial, batched, parallel and
cache-resumed runs is asserted before anything is recorded — the recorder
refuses to emit a record for a non-bit-identical run.

Recording on a single-CPU machine is refused by default: the parallel
tier would measure process-pool overhead, not parallelism, and committing
such a number misleads every ``--check-against`` consumer.  Pass
``--allow-single-cpu`` to record anyway (the payload is then annotated
with ``single_cpu`` + ``parallel_note``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import machine_meta, main as bench_main  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
        ),
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=12)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--check-against", default=None, dest="check_against")
    parser.add_argument("--tolerance", type=float, default=0.35)
    parser.add_argument(
        "--allow-single-cpu",
        action="store_true",
        help="record even on a 1-CPU machine (speedup_parallel is then "
        "annotated as meaningless)",
    )
    args = parser.parse_args()
    cpus = machine_meta()["cpus"]
    if cpus is not None and cpus < 2 and not args.allow_single_cpu:
        print(
            f"record_pipeline: refusing to record on a {cpus}-CPU machine "
            "(speedup_parallel would measure pool overhead, not "
            "parallelism); pass --allow-single-cpu to override",
            file=sys.stderr,
        )
        return 2
    args.bench = "pipeline"
    return bench_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
