"""Table 1 (paper Section 7.3): average unjustified delay, horizon 5*10^4.

Regenerates the paper's Table 1 protocol -- 6 algorithms x 4 traces, REF as
the fair reference -- and prints our grid next to the published means.

Quick mode: scaled traces, duration 5,000, 3 windows per trace.
Full mode (REPRO_BENCH_SCALE=full): duration 50,000, 25 windows.
"""

from __future__ import annotations

from repro.experiments.reporting import render_table
from repro.experiments.tables import TABLE1_PAPER, table1

from .conftest import FULL, once


def test_table1(benchmark):
    if FULL:
        result = once(
            benchmark, table1, duration=50_000, n_repeats=25, seed=0
        )
    else:
        result = once(benchmark, table1, duration=5_000, n_repeats=3, seed=0)

    print()
    print("=" * 72)
    print("Table 1 -- avg delay (delta_psi / p_tot), reproduced")
    print(render_table(result))
    print()
    print("paper's published means (full-size traces):")
    header = "            " + "".join(
        t.rjust(16) for t in result.config.traces
    )
    print(header)
    for alg, row in TABLE1_PAPER.items():
        cells = "".join(f"{row[t]:>16g}" for t in result.config.traces)
        print(f"{alg:<12}{cells}")
    print("=" * 72)

    # The paper's qualitative claims, asserted on our reproduction.
    # With 3 windows/trace the per-trace estimates are noisy (the paper
    # averages 100), so claims are checked on trace-aggregated means:
    algs = result.algorithms()
    means = {
        trace: {a: result.mean_std(trace, a)[0] for a in algs}
        for trace in result.config.traces
    }
    totals = {
        a: sum(means[t][a] for t in result.config.traces) for a in algs
    }
    # (i) RAND is at least as fair as the whole fair share family overall
    assert totals["Rand(N=15)"] <= totals["FairShare"] + 1e-9
    assert totals["Rand(N=15)"] <= totals["UtFairShare"] + 1e-9
    assert totals["Rand(N=15)"] <= totals["CurrFairShare"] + 1e-9
    # (ii) RoundRobin is far less fair than RAND overall
    assert totals["RoundRobin"] >= totals["Rand(N=15)"]
    # (iii) PIK-IPLEX (lightly loaded) shows the least unfairness overall
    pik_worst = max(means["PIK-IPLEX"].values())
    ricc_worst = max(means["RICC"].values())
    assert pik_worst <= ricc_worst
