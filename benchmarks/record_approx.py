"""Record the certified approximation ladder's quality/throughput
trajectory (thin wrapper over ``repro bench approx``)::

    PYTHONPATH=src python benchmarks/record_approx.py \
        [--output BENCH_approx.json] [--quick]

BENCH_approx.json is the ISSUE 9 acceptance artifact: ``ref_adaptive``
decision throughput at k=50/100/200 (org counts no exact policy can
touch), the per-decision certified rate at each tier, and the realized
stratified-vs-uniform estimator variance ratio (must stay >= 1.0 -- the
variance reduction is supposed to be pure profit).  ``--check-against``
turns it into the CI perf-gate: quality floors, not wall-clock.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import main as bench_main  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_approx.json"
        ),
    )
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--check-against", dest="check_against", default=None)
    parser.add_argument("--tolerance", type=float, default=0.35)
    args = parser.parse_args()
    args.bench = "approx"
    return bench_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
