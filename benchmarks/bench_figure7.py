"""Figure 7 + Theorem 6.2 (paper Section 6): greedy resource utilization.

Two parts:

* the exact Fig. 7 instance -- best greedy tie-break achieves 100%
  utilization at T=6, worst achieves exactly 75% (the tight bound);
* an empirical sweep of random adversarial instances over several greedy
  policies: the minimum observed ratio against the certified preemptive
  upper bound must stay >= 3/4 (and approaches it).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.greedy import fifo_select
from repro.analysis.utilization import (
    competitive_ratio,
    figure7_ratios,
    random_adversarial_workload,
)

from .conftest import FULL, once


def test_figure7_exact(benchmark):
    best, worst = once(benchmark, figure7_ratios)
    print()
    print("=" * 60)
    print("Figure 7 -- greedy utilization at T=6")
    print(f"  O(2)-first greedy: {best:.2%}   (paper: 100%)")
    print(f"  O(1)-first greedy: {worst:.2%}   (paper: 75%)")
    print("=" * 60)
    assert best == 1.0
    assert worst == 0.75


def _policies():
    def longest_queue(engine):
        return max(
            engine.waiting_orgs(),
            key=lambda u: (engine.waiting_count(u), -u),
        )

    def lowest_org(engine):
        return engine.waiting_orgs()[0]

    return {"fifo": fifo_select, "longest_queue": longest_queue,
            "lowest_org": lowest_org}


def test_theorem_6_2_sweep(benchmark):
    n_instances = 400 if FULL else 80

    def sweep():
        rng = np.random.default_rng(0)
        worst = 1.0
        worst_case = None
        for i in range(n_instances):
            wl = random_adversarial_workload(rng)
            t = int(rng.integers(4, 30))
            for name, policy in _policies().items():
                ratio = competitive_ratio(wl, t, policy)
                if ratio < worst:
                    worst = ratio
                    worst_case = (i, name, t)
        return worst, worst_case

    worst, worst_case = once(benchmark, sweep)
    print()
    print("=" * 60)
    print("Theorem 6.2 -- greedy vs preemptive-optimal completed work")
    print(f"  instances x policies checked: {n_instances} x 3")
    print(f"  worst observed ratio: {worst:.4f}  at {worst_case}")
    print("  theorem bound: 0.7500 (tight, by the Fig. 7 instance)")
    print("=" * 60)
    assert worst >= 0.75 - 1e-12
