"""Record sharded multi-tenant gateway throughput (thin wrapper).

The recorder lives in :mod:`repro.bench` behind ``repro bench gateway``;
this script is the matching historical-style entry point::

    PYTHONPATH=src python benchmarks/record_gateway.py \
        [--output BENCH_gateway.json] [--quick]

The full record drives the ISSUE 8 acceptance instance -- 100k+ submit
events across 64 tenants on 2 worker processes, checkpointed under load
mid-stream -- plus smaller per-policy tiers and a SIGKILL/restore
recovery run.  Every tier re-verifies the fleet's per-shard output
against the batch scheduler before recording (a throughput number for a
wrong schedule would be meaningless), and the gated
``ratio_gateway_over_inproc`` tax compares two bit-identical code paths
timed on the same machine.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import main as bench_main  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_gateway.json"
        ),
    )
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--check-against", dest="check_against", default=None)
    parser.add_argument("--tolerance", type=float, default=0.35)
    args = parser.parse_args()
    args.bench = "gateway"
    return bench_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
