"""Figure 10 (paper Section 7.3): unfairness vs the number of organizations.

The paper's LPC-EGEE sweep (k = 2..10): the average unjustified delay grows
with the number of organizations for every algorithm, and the gap between
contribution-tracking schedulers and the fair share family widens.

REF costs Theta(3^k) per event, so quick mode sweeps k = 2..5; full mode
goes to the paper's 10.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure10
from repro.experiments.reporting import render_series

from .conftest import FULL, once


def test_figure10(benchmark):
    if FULL:
        org_counts = tuple(range(2, 11))
        xs, series = once(
            benchmark,
            figure10,
            org_counts,
            duration=10_000,
            n_repeats=10,
        )
    else:
        org_counts = (2, 3, 4, 5)
        xs, series = once(
            benchmark,
            figure10,
            org_counts,
            duration=3_000,
            n_repeats=3,
        )

    print()
    print("=" * 72)
    print("Figure 10 -- avg delay vs number of organizations (LPC-EGEE)")
    print(render_series(xs, series, "organizations", ""))
    print()
    print(
        "paper's shape: every curve grows with k; ordering "
        "RoundRobin > CurrFairShare > FairShare > DirectContr > Rand"
    )
    print("=" * 72)

    # Shape assertions: aggregate unfairness grows with k, and the
    # Shapley-tracking RAND stays more fair than the share-based and
    # arbitrary baselines across the sweep (windows are held fixed across
    # k -- common-random-numbers -- so the trend is not window noise).
    totals = np.zeros(len(xs))
    for ys in series.values():
        totals += np.asarray(ys)
    assert totals[-1] >= totals[0], "total unfairness should grow with k"
    mean_by_alg = {name: float(np.mean(ys)) for name, ys in series.items()}
    for baseline in ("RoundRobin", "FairShare", "CurrFairShare"):
        assert mean_by_alg["Rand(N=15)"] <= mean_by_alg[baseline] + 1e-9
