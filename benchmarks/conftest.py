"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and prints
it in the paper's layout next to the published values (EXPERIMENTS.md keeps
the persistent record).  Default parameters are scaled for laptop runs; set

    REPRO_BENCH_SCALE=full

to use the paper's full-size durations and repetition counts (hours of CPU).
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_SCALE", "quick").lower() == "full"


@pytest.fixture(scope="session")
def bench_mode() -> str:
    return "full" if FULL else "quick"


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark.

    Table/figure regenerations take seconds to minutes; statistical timing
    repetition is meaningless at that scale, so each runs a single round.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
