"""Figure 2 (paper Section 4): the worked strategy-proof-utility example.

Regenerates every number in the Fig. 2 caption from the reconstructed
schedule and checks them digit-for-digit against the paper.
"""

from __future__ import annotations

from repro.experiments.figures import figure2_numbers, figure2_schedule

from .conftest import once

PAPER = {
    "psi_o1_t13": 262,
    "psi_o1_t14": 297,
    "flow_time_o1": 70,
    "gain_without_j2": 4,
    "loss_j6_late": -6,
    "loss_drop_j9": -10,
}


def test_figure2(benchmark):
    numbers = once(benchmark, figure2_numbers)

    print()
    print("=" * 60)
    print("Figure 2 -- worked psi_sp example")
    print(f"{'quantity':<22}{'paper':>10}{'ours':>10}")
    ours = {
        "psi_o1_t13": numbers.psi_o1_t13,
        "psi_o1_t14": numbers.psi_o1_t14,
        "flow_time_o1": numbers.flow_time_o1,
        "gain_without_j2": numbers.gain_without_j2,
        "loss_j6_late": numbers.loss_j6_late,
        "loss_drop_j9": numbers.loss_drop_j9,
    }
    for key, want in PAPER.items():
        print(f"{key:<22}{want:>10}{ours[key]:>10}")
    print("=" * 60)

    assert ours == PAPER  # exact reproduction

    # schedule itself is a feasible greedy schedule of the instance
    sched = figure2_schedule()
    assert sched.makespan() == 14


def test_figure2_psi_evaluation_speed(benchmark):
    """Throughput micro-benchmark: psi_sp evaluation over the Fig. 2
    schedule at every t in [0, 14] (the hot inner loop of every fair
    scheduler)."""
    from repro.utility.strategyproof import psi_sp

    pairs = figure2_schedule().org_pairs(0)

    def evaluate():
        return [psi_sp(pairs, t) for t in range(15)]

    values = benchmark(evaluate)
    assert values[13] == 262 and values[14] == 297
