"""Theorem 5.1 executed (paper Section 5): contributions decode SUBSETSUM.

Builds the reduction gadget for small SUBSETSUM instances, computes the
dummy organization's Shapley contribution through the exact REF machinery,
and decodes ``floor((k+2)! phi_a / L)`` -- which must equal the
subset-counting oracle ``n_<x(S)``.  Comparing the counts at x and x+1
answers the SUBSETSUM instance, exactly as in the proof.
"""

from __future__ import annotations

from repro.algorithms.ref import RefScheduler
from repro.analysis.hardness import (
    ORG_A,
    count_orderings_below,
    decode_contribution,
    gadget_eval_time,
    gadget_workload,
)

from .conftest import FULL, once

INSTANCES = [
    ([1, 2], 2, True),  # {2} sums to 2
    ([1, 3], 2, False),  # no subset sums to 2
    ([2, 3], 5, True),  # {2, 3}
]
if FULL:
    INSTANCES += [([1, 2, 4], 3, True), ([2, 3, 4], 8, False)]


def _solve(values, x):
    a = ORG_A(values)

    def decoded(target):
        wl = gadget_workload(values, target)
        t = gadget_eval_time(values, target)
        phi = RefScheduler().contributions_at(wl, t)
        return decode_contribution(phi[a], values)

    d_x, d_x1 = decoded(x), decoded(x + 1)
    return d_x, d_x1, d_x1 > d_x


def test_hardness_gadget(benchmark):
    def run_all():
        return [_solve(values, x) for values, x, _ in INSTANCES]

    results = once(benchmark, run_all)
    print()
    print("=" * 72)
    print("Theorem 5.1 gadget -- Shapley contribution decodes SUBSETSUM")
    print(f"{'S':<12}{'x':>3}{'n_<x dec':>10}{'n_<x+1 dec':>12}"
          f"{'answer':>8}{'expected':>10}")
    for (values, x, expected), (d_x, d_x1, answer) in zip(INSTANCES, results):
        print(
            f"{str(values):<12}{x:>3}{d_x:>10}{d_x1:>12}"
            f"{str(answer):>8}{str(expected):>10}"
        )
    print("=" * 72)

    for (values, x, expected), (d_x, d_x1, answer) in zip(INSTANCES, results):
        assert d_x == count_orderings_below(values, x)
        assert d_x1 == count_orderings_below(values, x + 1)
        assert answer == expected
