"""Propositions 4.2 / 5.4 / 5.5 and the Theorem 5.3 gap, regenerated.

These are the paper's supporting results; the benchmark prints each check's
outcome so EXPERIMENTS.md can record them alongside the tables.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.greedy import fifo_select
from repro.analysis.inapprox import order_reverse_gap
from repro.analysis.properties import (
    greedy_value_invariance,
    non_supermodular_witness,
    psi_flowtime_identity,
)

from .conftest import FULL, once
from tests.conftest import random_workload


def test_prop_4_2(benchmark):
    n = 2000 if FULL else 400

    def sweep():
        rng = np.random.default_rng(0)
        ok = 0
        for _ in range(n):
            p = int(rng.integers(1, 9))
            count = int(rng.integers(1, 7))
            starts = sorted(int(s) for s in rng.integers(0, 40, count))
            releases = [int(rng.integers(0, s + 1)) for s in starts]
            t = max(starts) + p + int(rng.integers(0, 10))
            _, _, holds = psi_flowtime_identity(
                [(s, p) for s in starts], releases, t
            )
            ok += holds
        return ok

    ok = once(benchmark, sweep)
    print(f"\nProp 4.2 identity held on {ok}/{n} random instances")
    assert ok == n


def test_prop_5_4(benchmark):
    n = 120 if FULL else 30

    def longest_queue(engine):
        return max(
            engine.waiting_orgs(), key=lambda u: (engine.waiting_count(u), -u)
        )

    def sweep():
        rng = np.random.default_rng(1)
        ok = 0
        for _ in range(n):
            wl = random_workload(
                rng, n_orgs=3, n_jobs=40, max_release=25, sizes=(1,)
            )
            ok += greedy_value_invariance(
                wl, [fifo_select, longest_queue], [5, 10, 20, 30, 50]
            )
        return ok

    ok = once(benchmark, sweep)
    print(f"\nProp 5.4 (unit jobs, greedy-invariant values): {ok}/{n}")
    assert ok == n


def test_prop_5_5(benchmark):
    w = once(benchmark, non_supermodular_witness)
    print(
        f"\nProp 5.5 witness: v(ac)={w.v_ac} v(bc)={w.v_bc} "
        f"v(abc)={w.v_abc} v(c)={w.v_c} -> supermodular? "
        f"{w.is_supermodular_here}"
    )
    assert (w.v_ac, w.v_bc, w.v_abc, w.v_c) == (4, 4, 7, 0)
    assert not w.is_supermodular_here


def test_theorem_5_3_gap(benchmark):
    ms = (2, 4, 8, 16, 64, 256, 1024) if FULL else (2, 4, 8, 32, 128)

    def sweep():
        return [order_reverse_gap(m, 3) for m in ms]

    gaps = once(benchmark, sweep)
    print("\nTheorem 5.3 gap (relative distance sigma_ord vs sigma_rev):")
    for g in gaps:
        print(f"  m={g.n_orgs:>5}: ratio={g.ratio:.4f}")
    ratios = [g.ratio for g in gaps]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > 0.97  # -> 1, inapproximability regime
