"""Ablation A3: event-driven engine vs the per-tick reference simulator.

The production engine only acts at release/completion events; the paper's
pseudo-code ticks every time moment.  The schedules are identical (proved in
tests); this benchmark quantifies the speedup and times the engine's core
operations that dominate every scheduler in the library.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.greedy import fifo_select
from repro.core.engine import ClusterEngine
from repro.sim.tick_reference import TickSimulator

from .conftest import FULL
from tests.conftest import random_workload


def _workload(scale: int):
    rng = np.random.default_rng(42)
    return random_workload(
        rng,
        n_orgs=4,
        n_jobs=60 * scale,
        max_release=200 * scale,
        sizes=(1, 3, 9, 27),
        machine_counts=[2, 1, 1, 1],
    )


def test_event_driven_engine(benchmark):
    wl = _workload(4 if FULL else 1)

    def run():
        eng = ClusterEngine(wl)
        eng.drive(fifo_select)
        return eng

    eng = benchmark(run)
    assert eng.done()


def test_tick_reference(benchmark):
    wl = _workload(4 if FULL else 1)
    horizon = max(j.release for j in wl.jobs) + sum(j.size for j in wl.jobs)

    def tick_fifo(sim):
        return min(sim.waiting_orgs(), key=lambda u: (sim.head_release(u), u))

    def run():
        return TickSimulator(wl).run(tick_fifo, until=horizon)

    sched = benchmark(run)

    # cross-check: identical schedule to the event-driven engine
    eng = ClusterEngine(wl)
    eng.drive(fifo_select)
    assert sched == eng.schedule()


def test_psi_query_throughput(benchmark):
    """Per-event utility vector queries -- the inner loop of REF/RAND."""
    wl = _workload(2 if FULL else 1)
    eng = ClusterEngine(wl)
    eng.drive(fifo_select)
    t = eng.t

    def query():
        return eng.psis(t)

    psis = benchmark(query)
    assert len(psis) == wl.n_orgs


def test_ref_event_cost(benchmark):
    """One full REF run on a small instance: the 3^k per-event machinery."""
    rng = np.random.default_rng(3)
    wl = random_workload(
        rng, n_orgs=4, n_jobs=40, max_release=60,
        sizes=(1, 2, 5), machine_counts=[1, 1, 1, 1],
    )
    from repro.algorithms.ref import RefScheduler

    def run():
        return RefScheduler().run(wl)

    result = benchmark(run)
    assert len(result.schedule) == 40


def ref_k8_workload():
    """The REF k=8 scaling instance (255 coalition engines per event) --
    the speedup target of the CoalitionFleet refactor, recorded in
    BENCH_fleet.json by benchmarks/record_fleet.py."""
    rng = np.random.default_rng(8)
    return random_workload(
        rng, n_orgs=8, n_jobs=48, max_release=60,
        sizes=(1, 2, 5), machine_counts=[1] * 8,
    )


def test_ref_k8_event_loop(benchmark):
    """The full REF event loop at k=8: batched fleet values + vectorized
    UpdateVals vs the seed's pure-Python 2^k passes (>= 2x target)."""
    wl = ref_k8_workload()
    from repro.algorithms.ref import RefScheduler

    def run():
        return RefScheduler().run(wl)

    result = benchmark(run)
    assert len(result.schedule) == 48
