"""Generate / check the committed ``repro.api`` surface snapshot.

The public surface is a deliverable: ``API_SURFACE.txt`` at the
repository root lists every ``repro.api`` export with its callable
signature, one per line.  CI (and ``tests/test_policy_registry.py``)
runs ``--check`` so any surface change must come with a reviewed,
regenerated snapshot (``--write``)::

    PYTHONPATH=src python tools/api_surface.py --check
    PYTHONPATH=src python tools/api_surface.py --write

Lines are ``name(signature)  # kind`` — for classes the signature is the
constructor's, which for dataclasses pins the field set, so adding or
removing a field on e.g. ``PolicyCapabilities`` also shows up here.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "API_SURFACE.txt"

HEADER = (
    "# repro.api public surface — regenerate with\n"
    "#   PYTHONPATH=src python tools/api_surface.py --write\n"
    "# CI fails when this file does not match the code (api-surface job).\n"
)


def surface_lines() -> list[str]:
    """One stable line per ``repro.api`` export (sorted by name)."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro import api

    lines = []
    for name in sorted(api.__all__):
        obj = getattr(api, name)
        if inspect.isclass(obj):
            kind = "class"
        elif inspect.isfunction(obj):
            kind = "function"
        elif callable(obj):
            kind = "callable"
        else:
            kind = type(obj).__name__
        try:
            sig = str(inspect.signature(obj)) if callable(obj) else ""
        except (TypeError, ValueError):
            sig = "(...)"
        lines.append(f"{name}{sig}  # {kind}")
    return lines


def render() -> str:
    return HEADER + "\n".join(surface_lines()) + "\n"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) when API_SURFACE.txt does not match the code",
    )
    mode.add_argument(
        "--write", action="store_true", help="regenerate API_SURFACE.txt"
    )
    args = parser.parse_args(argv)

    want = render()
    if args.write:
        SNAPSHOT.write_text(want, encoding="utf-8")
        print(f"wrote {SNAPSHOT} ({len(want.splitlines()) - 3} exports)")
        return 0
    have = SNAPSHOT.read_text(encoding="utf-8") if SNAPSHOT.exists() else ""
    if have == want:
        print(f"API surface OK ({len(want.splitlines()) - 3} exports)")
        return 0
    import difflib

    diff = difflib.unified_diff(
        have.splitlines(), want.splitlines(),
        fromfile="API_SURFACE.txt (committed)", tofile="repro.api (code)",
        lineterm="",
    )
    print("\n".join(diff))
    print(
        "\nAPI surface drift: review the change, then regenerate with\n"
        "  PYTHONPATH=src python tools/api_surface.py --write",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
